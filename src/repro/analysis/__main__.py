"""CLI: ``python -m repro.analysis [paths...]`` — lint the house invariants.

Exits 0 when every contract holds, 1 with diagnostics otherwise.  The default
targets are ``src tests benchmarks`` — the same roots CI lints — so a bare
local run reproduces the CI gate.

Beyond linting: ``--format text|json|sarif`` (``--output`` writes the report
to a file, CI uploads the JSON as a build artifact), ``--baseline report.json``
hides findings already present in a previous JSON report, ``--list-rules`` /
``--explain RLxxx`` document the catalogue, and ``--update-golden --reason
"..."`` refreshes the RL007 fingerprint baseline after an intentional golden
edit.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path

from .fingerprint import (
    DEFAULT_BASELINE_PATH,
    collect_fingerprints,
    write_golden_baseline,
)
from .report import (
    apply_baseline,
    load_report_baseline,
    render_json,
    render_sarif,
    render_text,
    rule_catalogue,
)
from .reprolint import FRAMEWORK_RULE_ID, ParsedFile, iter_python_files, lint_paths
from .rules import ALL_RULES, PROGRAM_RULES

DEFAULT_PATHS = ["src", "tests", "benchmarks"]

_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def _explain(rule_id: str) -> int:
    for rule_cls in ALL_RULES + PROGRAM_RULES:
        if rule_cls.rule_id == rule_id:
            print(f"{rule_cls.rule_id} [{rule_cls.slug}] {rule_cls.description}")
            doc = textwrap.dedent(rule_cls.__doc__ or "").strip()
            if doc:
                print()
                print(doc)
            return 0
    if rule_id == FRAMEWORK_RULE_ID:
        print(f"{FRAMEWORK_RULE_ID} [pragma] pragma hygiene and parse errors")
        return 0
    print(f"unknown rule id {rule_id!r}; see --list-rules", file=sys.stderr)
    return 2


def _update_golden(paths: list[str], reason: str) -> int:
    parsed_files: dict[str, ParsedFile] = {}
    for path in iter_python_files(paths):
        rel_path = path.as_posix()
        try:
            parsed_files[rel_path] = ParsedFile.parse(
                path.read_text(encoding="utf-8"), rel_path
            )
        except (OSError, SyntaxError):
            continue
    fingerprints, missing = collect_fingerprints(parsed_files)
    if missing:
        for key in missing:
            print(f"golden site {key} not found under {' '.join(paths)}", file=sys.stderr)
        return 2
    write_golden_baseline(fingerprints, reason)
    print(f"recorded {len(fingerprints)} golden fingerprint(s) in {DEFAULT_BASELINE_PATH}")
    print(f"reason: {reason}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-enforced architecture invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_RENDERERS),
        default="text",
        dest="fmt",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous JSON report; findings recorded there are hidden",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--explain",
        metavar="RLxxx",
        default=None,
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="refresh analysis/golden_baseline.json from the current tree (RL007)",
    )
    parser.add_argument(
        "--reason",
        default=None,
        help="why the golden regions changed (required with --update-golden)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in rule_catalogue():
            print(f"{entry['id']} [{entry['slug']}] {entry['description']}")
        return 0
    if args.explain is not None:
        return _explain(args.explain)
    if args.update_golden:
        if not args.reason or not args.reason.strip():
            parser.error("--update-golden requires --reason (why did the golden regions change?)")
        return _update_golden(args.paths, args.reason.strip())

    violations = lint_paths(args.paths)
    suppressed = 0
    if args.baseline is not None:
        try:
            baseline = load_report_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"unreadable --baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        violations, suppressed = apply_baseline(violations, baseline)

    report = _RENDERERS[args.fmt](violations, suppressed)
    if args.output is not None:
        args.output.write_text(report, encoding="utf-8")
        # keep the terminal summary even when the report goes to a file
        print(render_text(violations, suppressed))
    else:
        print(report, end="" if report.endswith("\n") else "\n")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
