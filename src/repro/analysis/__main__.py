"""CLI: ``python -m repro.analysis [paths...]`` — lint the house invariants.

Exits 0 when every contract holds, 1 with ``file:line: RLxxx message``
diagnostics otherwise.  The default target is ``src`` (the production tree);
CI also passes ``tests benchmarks`` so seeded corpora and harness code keep
the same pragma hygiene.
"""

from __future__ import annotations

import argparse
import sys

from .reprolint import FRAMEWORK_RULE_ID, FRAMEWORK_SLUG, lint_paths
from .rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: AST-enforced architecture invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(f"{FRAMEWORK_RULE_ID} [{FRAMEWORK_SLUG}] pragma hygiene and parse errors")
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.rule_id} [{rule_cls.slug}] {rule_cls.description}")
        return 0

    violations = lint_paths(args.paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"reprolint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
