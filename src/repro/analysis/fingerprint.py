"""AST-normalized fingerprints of the declared golden regions (RL007).

RL001 bans a *list of idioms* inside a golden site; this module catches the
complementary silent-edit class: any semantic change at all.  A region's
fingerprint is the SHA-256 of its ``ast.dump`` with locations excluded and
docstrings stripped, so comments, blank lines, formatting and documentation
edits never trip the rule while a changed constant, reordered statement or
renamed local does.

The recorded hashes live in ``analysis/golden_baseline.json`` next to this
module and are refreshed only through ``python -m repro.analysis
--update-golden --reason "..."`` — the mandatory reason is stored alongside
the hashes so the history of intentional golden edits stays in the file.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path

from .contracts import GOLDEN_SITES, GoldenSite

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "golden_site_key",
    "region_fingerprint",
    "collect_fingerprints",
    "load_golden_baseline",
    "write_golden_baseline",
]

#: The committed baseline consumed by ``lint_paths`` and CI.
DEFAULT_BASELINE_PATH = Path(__file__).with_name("golden_baseline.json")

_DOC_SCOPES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def golden_site_key(site: GoldenSite) -> str:
    """The stable identity a site's hash is recorded under."""
    return f"{site.path_suffix}::{site.qualname or '<module>'}"


def _strip_docstrings(node: ast.AST) -> ast.AST:
    for scope in ast.walk(node):
        if not isinstance(scope, _DOC_SCOPES) or not scope.body:
            continue
        first = scope.body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            scope.body = scope.body[1:] or [ast.Pass()]
    return node


def region_fingerprint(node: ast.AST) -> str:
    """A location-free, docstring-free hash of one golden region's AST."""
    clean = _strip_docstrings(copy.deepcopy(node))
    dump = ast.dump(clean, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def find_site_region(site: GoldenSite, parsed) -> ast.AST | None:
    """The AST region a site declares inside one parsed file, if present."""
    if site.qualname is None:
        return parsed.tree
    for qualname, node in parsed.functions + parsed.classes:
        if qualname == site.qualname:
            return node
    return None


def collect_fingerprints(parsed_files: dict) -> tuple[dict[str, str], list[str]]:
    """``({site key: hash}, [keys of sites missing from the parsed set])``."""
    fingerprints: dict[str, str] = {}
    missing: list[str] = []
    for site in GOLDEN_SITES:
        region = None
        for rel_path, parsed in sorted(parsed_files.items()):
            if rel_path.endswith(site.path_suffix):
                region = find_site_region(site, parsed)
                if region is not None:
                    break
        if region is None:
            missing.append(golden_site_key(site))
        else:
            fingerprints[golden_site_key(site)] = region_fingerprint(region)
    return fingerprints, missing


def load_golden_baseline(path: str | Path = DEFAULT_BASELINE_PATH) -> dict[str, str] | None:
    """The recorded ``{site key: hash}`` map, or ``None`` when absent/invalid."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, dict):
        return None
    return {str(k): str(v) for k, v in fingerprints.items()}


def write_golden_baseline(
    fingerprints: dict[str, str], reason: str, path: str | Path = DEFAULT_BASELINE_PATH
) -> None:
    payload = {
        "comment": (
            "AST-normalized golden-region fingerprints (RL007). Refresh only via "
            "`python -m repro.analysis --update-golden --reason '...'`."
        ),
        "reason": reason,
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
