"""Strong-scaling helpers (Fig. 11)."""

from __future__ import annotations

from typing import Sequence

from ..utils.tables import Table


def parallel_efficiency(ns_day: Sequence[float], nodes: Sequence[int]) -> list[float]:
    """Efficiency relative to the smallest node count (the paper's convention).

    efficiency(N) = (ns_day(N) / ns_day(N0)) / (N / N0)
    """
    if len(ns_day) != len(nodes):
        raise ValueError("ns/day and node lists must have the same length")
    if not ns_day:
        return []
    pairs = sorted(zip(nodes, ns_day))
    base_nodes, base_perf = pairs[0]
    if base_perf <= 0 or base_nodes <= 0:
        raise ValueError("baseline performance and node count must be positive")
    efficiencies = [0.0] * len(ns_day)
    for n, perf in zip(nodes, ns_day):
        eff = (perf / base_perf) / (n / base_nodes)
        efficiencies[list(nodes).index(n)] = eff
    return efficiencies


def scaling_table(
    nodes: Sequence[int],
    ns_day: Sequence[float],
    system: str,
    baseline_ns_day: float | None = None,
) -> Table:
    """The Fig. 11 series as a printable table."""
    eff = parallel_efficiency(ns_day, nodes)
    headers = ["system", "nodes", "cores", "ns/day", "parallel efficiency %"]
    if baseline_ns_day is not None:
        headers.append("speedup vs baseline")
    table = Table(headers=headers, title=f"Strong scaling — {system}")
    for i, (n, perf) in enumerate(zip(nodes, ns_day)):
        row = [system, n, n * 48, perf, 100.0 * eff[i]]
        if baseline_ns_day is not None:
            row.append(perf / baseline_ns_day)
        table.add_row(*row)
    return table
