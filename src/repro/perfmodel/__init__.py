"""Per-step performance model: kernel costs, communication costs, ns/day.

The paper's headline numbers (149 ns/day, 31.7x speedup, 62 % parallel
efficiency at 12,000 nodes) are wall-clock measurements on Fugaku.  Without
the machine, this package models the per-step time from first principles:

* :mod:`kernels` — FLOP counts of the Deep Potential inference per atom
  (embedding, descriptor, fitting, forward + backward), converted to time by
  the A64FX node model with the GEMM-efficiency/precision factors the paper
  reports, plus framework overhead and threading overhead;
* :mod:`comm_cost` — the time of a :class:`CommunicationPlan` on the TofuD
  model (gather/scatter over the NoC, messages over the TNIs, NIC-cache
  penalties, the force send-back);
* :mod:`timeline` — assembling the phases into a step time and converting to
  nanoseconds per day;
* :mod:`strongscaling` — sweeps over node counts and parallel efficiency.

All model constants live in :mod:`repro.hardware.specs`; the algorithmic
inputs (message counts/sizes, atom counts per rank, FLOPs) come from the real
decomposition and the real model configuration.
"""

from .kernels import KernelCostModel, PerAtomFlops
from .comm_cost import CommCostModel, CommTimeBreakdown, plan_with_measured_volume
from .timeline import StepTimeline
from .strongscaling import parallel_efficiency, scaling_table

__all__ = [
    "KernelCostModel",
    "PerAtomFlops",
    "CommCostModel",
    "CommTimeBreakdown",
    "plan_with_measured_volume",
    "StepTimeline",
    "parallel_efficiency",
    "scaling_table",
]
