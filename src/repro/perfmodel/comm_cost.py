"""Pricing a communication plan on the machine model.

The per-step ghost exchange consists of (for the node-based scheme)

1. workers copy local atoms into shared RDMA buffers (NoC, cross-NUMA),
2. an intra-node synchronization,
3. the leaders' messages to neighbouring nodes, spread over the TNIs,
4. another synchronization and the scatter of received ghosts,
5. the reverse path for the ghost-force reduction (smaller payload).

Rank-level schemes (3-stage, p2p) skip 1/2/4 and pay per-message software
overheads instead (MPI in the baseline).  The NIC registration-cache penalty
applies when buffers are registered per neighbour rather than pooled.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hardware.nic_cache import NICRegistrationCache
from ..hardware.noc import NocModel
from ..hardware.specs import FUGAKU, UNPACK_PER_MESSAGE, FugakuSpec
from ..hardware.tni import TNIScheduler
from ..hardware.tofu import TofuDNetwork, TorusCoordinates
from ..parallel.messages import CommRound, CommunicationPlan


def plan_with_measured_volume(
    plan: CommunicationPlan, measured_forward_bytes: float
) -> CommunicationPlan:
    """Rescale a modelled plan to a *measured* forward exchange volume.

    The scheme planners size their messages from a uniform-density geometric
    model; the domain-decomposed engine reports the ghost bytes one rank
    actually shipped per exchange
    (``DomainDecomposedSimulation.measured_comm_volume()["forward_bytes_per_rank"]``).
    This helper scales every message and the intra-node gather/scatter copies
    by ``measured / modelled`` so the machine model prices the exchange the
    running engine performed, keeping message counts, rounds, hop counts and
    threading untouched.
    """
    if measured_forward_bytes < 0:
        raise ValueError("measured volume must be non-negative")
    modelled = plan.total_message_bytes
    if modelled <= 0.0:
        raise ValueError("cannot rescale a plan that models zero message bytes")
    scale = measured_forward_bytes / modelled
    rounds = [
        CommRound(
            messages=[replace(m, n_bytes=m.n_bytes * scale) for m in r.messages],
            engines=r.engines,
            threads=r.threads,
        )
        for r in plan.rounds
    ]
    scaled = replace(
        plan,
        rounds=rounds,
        gather_bytes_per_rank=[b * scale for b in plan.gather_bytes_per_rank],
        scatter_bytes_per_rank=[b * scale for b in plan.scatter_bytes_per_rank],
        notes={**plan.notes, "measured_forward_bytes": measured_forward_bytes},
    )
    return scaled


@dataclass
class CommTimeBreakdown:
    """Time components of one ghost exchange (seconds)."""

    gather: float = 0.0
    network: float = 0.0
    scatter: float = 0.0
    sync: float = 0.0
    reverse: float = 0.0

    @property
    def forward(self) -> float:
        return self.gather + self.network + self.scatter + self.sync

    @property
    def total(self) -> float:
        return self.forward + self.reverse

    def as_dict(self) -> dict[str, float]:
        return {
            "gather": self.gather,
            "network": self.network,
            "scatter": self.scatter,
            "sync": self.sync,
            "reverse": self.reverse,
            "total": self.total,
        }


@dataclass
class CommCostModel:
    """Evaluates :class:`CommunicationPlan` objects on the Fugaku model."""

    machine: FugakuSpec = field(default_factory=lambda: FUGAKU)

    def __post_init__(self) -> None:
        self.network = TofuDNetwork(TorusCoordinates((1, 1, 1)), self.machine.network)
        self.noc = NocModel(self.machine.node)
        self.tni = TNIScheduler(self.machine.network)
        self.nic_cache = NICRegistrationCache(self.machine.nic_cache)

    # -- one direction -----------------------------------------------------------
    def _network_time(self, plan: CommunicationPlan, byte_scale: float = 1.0) -> float:
        penalty = 0.0
        if plan.registered_regions is not None:
            penalty = self.nic_cache.per_message_penalty(plan.registered_regions)
        sharing = max(1, int(plan.ranks_sharing_network))
        round_overhead = (
            self.machine.network.rdma_round_overhead
            if plan.use_rdma
            else self.machine.network.mpi_round_overhead
        )
        total = 0.0
        for comm_round in plan.rounds:
            occupancies = []
            max_latency = 0.0
            for message in comm_round.messages:
                if message.intra_node:
                    single = self.noc.gather_time(
                        [message.n_bytes * byte_scale], copy_threads=plan.copy_threads
                    )
                else:
                    single = self.network.occupancy(
                        message.n_bytes * byte_scale,
                        use_rdma=plan.use_rdma,
                        registration_penalty=penalty,
                    )
                    max_latency = max(
                        max_latency, self.network.latency(message.hops, plan.use_rdma)
                    )
                # Rank-level schemes: every rank of the node issues the same
                # pattern concurrently, competing for the node's TNIs/links.
                occupancies.extend([single] * sharing)
            # Engine occupancy serializes on the TNIs; the wire latency of the
            # round is pipelined and charged once (the last message's arrival).
            total += (
                round_overhead
                + self.tni.makespan(
                    occupancies, engines=comm_round.engines, threads=comm_round.threads
                )
                + max_latency
            )
        return total

    def evaluate(self, plan: CommunicationPlan) -> CommTimeBreakdown:
        """Time of the full exchange (positions out, forces back)."""
        breakdown = CommTimeBreakdown()
        breakdown.gather = self.noc.gather_time(plan.gather_bytes_per_rank, plan.copy_threads)
        breakdown.scatter = self.noc.scatter_time(plan.scatter_bytes_per_rank, plan.copy_threads)
        if plan.unpack_messages:
            breakdown.scatter += (
                plan.unpack_messages * UNPACK_PER_MESSAGE / max(1, min(plan.copy_threads, 48))
            )
        breakdown.sync = self.noc.synchronization_time(plan.n_intra_node_syncs)
        breakdown.network = self._network_time(plan, byte_scale=1.0)

        # Reverse path: ghost forces flow back with a smaller payload; the
        # intra-node part mirrors gather/scatter at the force-byte ratio.
        ratio = plan.reverse_traffic_ratio
        reverse_network = self._network_time(plan, byte_scale=ratio)
        reverse_intra = ratio * (breakdown.gather + breakdown.scatter)
        reverse_sync = breakdown.sync
        breakdown.reverse = reverse_network + reverse_intra + reverse_sync
        return breakdown

    def exchange_time(self, plan: CommunicationPlan) -> float:
        return self.evaluate(plan).total

    def exchange_time_measured(self, plan: CommunicationPlan, measured_forward_bytes: float) -> float:
        """Exchange time with the plan rescaled to a measured ghost volume."""
        return self.exchange_time(plan_with_measured_volume(plan, measured_forward_bytes))
