"""Kernel cost model of Deep Potential inference.

FLOP counts are derived from the model hyper-parameters (embedding sizes,
axis neurons, fitting sizes, neighbours per atom) and priced by the
:class:`~repro.hardware.a64fx.A64FXNode` model.  The same counts drive both
the baseline (framework, fp64, BLAS, OpenMP) and the optimized configuration;
the configuration toggles change *which* efficiency factors, overheads and
extra work apply — exactly the structure of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from ..hardware.a64fx import A64FXNode
from ..hardware.specs import FUGAKU, FugakuSpec


@dataclass(frozen=True)
class PerAtomFlops:
    """Floating-point operation counts for evaluating one atom."""

    environment: float
    embedding_forward: float
    embedding_backward: float
    descriptor_forward: float
    descriptor_backward: float
    fitting_forward: float
    fitting_backward: float

    @property
    def total(self) -> float:
        return (
            self.environment
            + self.embedding_forward
            + self.embedding_backward
            + self.descriptor_forward
            + self.descriptor_backward
            + self.fitting_forward
            + self.fitting_backward
        )


def _mlp_flops(sizes: tuple[int, ...]) -> float:
    """Multiply-add FLOPs of one forward pass through consecutive layers."""
    flops = 0.0
    for n_in, n_out in zip(sizes[:-1], sizes[1:]):
        flops += 2.0 * n_in * n_out
    return flops


@dataclass
class KernelCostModel:
    """Per-atom and per-step compute time for a Deep Potential configuration.

    Parameters
    ----------
    embedding_sizes / axis_neurons / fitting_sizes:
        the network hyper-parameters (paper: (25, 50, 100), 16, (240,240,240)).
    neighbors_per_atom:
        padded neighbour count (paper: 512 for Cu at 8 A, 46/92 for H/O at 6 A).
    machine:
        the hardware constants.
    """

    embedding_sizes: tuple[int, ...] = (25, 50, 100)
    axis_neurons: int = 16
    fitting_sizes: tuple[int, ...] = (240, 240, 240)
    neighbors_per_atom: int = 512
    machine: FugakuSpec = field(default_factory=lambda: FUGAKU)

    def __post_init__(self) -> None:
        self.node_model = A64FXNode(self.machine.node)
        self.m_width = self.embedding_sizes[-1]
        self.descriptor_dim = self.m_width * self.axis_neurons

    # -- FLOP counting ----------------------------------------------------------
    def per_atom_flops(self, compressed: bool = True) -> PerAtomFlops:
        n = self.neighbors_per_atom
        m = self.m_width
        m2 = self.axis_neurons

        environment = 12.0 * n  # distances, switching function, R rows
        if compressed:
            # batched cubic-Hermite table kernel: counts reconciled with the
            # real implementation (the constants live next to the kernel in
            # repro.deepmd.compression; a cross-module test pins the match).
            # Imported lazily so the perf model stays usable standalone.
            from ..deepmd.compression import (
                EMBEDDING_GRAD_DOT_FLOPS_PER_COMPONENT,
                HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT,
                HERMITE_DERIVATIVE_FLOPS_PER_NEIGHBOR,
                HERMITE_VALUE_FLOPS_PER_COMPONENT,
                HERMITE_VALUE_FLOPS_PER_NEIGHBOR,
            )

            embedding_fwd = (
                HERMITE_VALUE_FLOPS_PER_COMPONENT * m + HERMITE_VALUE_FLOPS_PER_NEIGHBOR
            ) * n
            embedding_bwd = (
                (
                    HERMITE_DERIVATIVE_FLOPS_PER_COMPONENT
                    + EMBEDDING_GRAD_DOT_FLOPS_PER_COMPONENT
                )
                * m
                + HERMITE_DERIVATIVE_FLOPS_PER_NEIGHBOR
            ) * n
        else:
            per_neighbor = _mlp_flops((1, *self.embedding_sizes))
            embedding_fwd = per_neighbor * n
            embedding_bwd = per_neighbor * n  # input-gradient pass

        descriptor_fwd = 2.0 * n * 4 * m + 2.0 * 4 * m * m2
        descriptor_bwd = 2.0 * descriptor_fwd + 2.0 * n * 4 * m  # dA, dR, dG

        fitting_fwd = _mlp_flops((self.descriptor_dim, *self.fitting_sizes, 1))
        fitting_bwd = fitting_fwd

        return PerAtomFlops(
            environment=environment,
            embedding_forward=embedding_fwd,
            embedding_backward=embedding_bwd,
            descriptor_forward=descriptor_fwd,
            descriptor_backward=descriptor_bwd,
            fitting_forward=fitting_fwd,
            fitting_backward=fitting_bwd,
        )

    # -- per-atom time -------------------------------------------------------------
    def per_atom_time(
        self,
        atoms_per_thread: int = 1,
        backend: str = "blas",
        precision: str = "double",
        compressed: bool = True,
        pretranspose: bool = True,
        framework: bool = False,
    ) -> float:
        """Modelled time (s) to evaluate one atom on one core.

        ``atoms_per_thread`` sets the M dimension of the fitting-net GEMMs
        (atom-by-atom evaluation means M equals the number of atoms a thread
        batches, 1-3 in the strong-scaling limit).
        """
        if atoms_per_thread < 1:
            raise ValueError("atoms per thread must be >= 1")
        flops = self.per_atom_flops(compressed)
        emb_dtype = "fp32" if precision in ("mix-fp32", "mix-fp16") else "fp64"
        fit_dtype = emb_dtype
        fit_first_dtype = "fp16" if precision == "mix-fp16" else fit_dtype

        time = 0.0
        # environment + descriptor: bandwidth/vector work at moderate efficiency
        time += self.node_model.flops_time(flops.environment, dtype="fp64", efficiency=0.10)
        time += self.node_model.flops_time(
            flops.descriptor_forward + flops.descriptor_backward, dtype=emb_dtype, efficiency=0.20
        )
        # embedding net: regular-shaped GEMMs over the neighbour dimension (or
        # the interpolation table when compressed)
        if compressed:
            time += self.node_model.flops_time(
                flops.embedding_forward + flops.embedding_backward, dtype=emb_dtype, efficiency=0.15
            )
        else:
            sizes = (1, *self.embedding_sizes)
            for n_in, n_out in zip(sizes[:-1], sizes[1:]):
                time += 2.0 * self.node_model.gemm_time(
                    self.neighbors_per_atom, n_out, n_in, dtype=emb_dtype, backend=backend
                )
        # fitting net: tall-and-skinny GEMMs, forward + backward
        m_dim = atoms_per_thread
        sizes = (self.descriptor_dim, *self.fitting_sizes, 1)
        for layer, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            dtype = fit_first_dtype if layer == 0 else fit_dtype
            fwd = self.node_model.fitting_gemm_time(m_dim, n_out, n_in, dtype=dtype, backend=backend)
            bwd = self.node_model.fitting_gemm_time(
                m_dim, n_in, n_out, dtype=dtype, backend=backend, transposed_b=not pretranspose
            )
            time += (fwd + bwd) / m_dim  # per atom
        if framework:
            time *= self.machine.framework_kernel_factor
        return time

    # -- per-step compute time ----------------------------------------------------------
    def rank_compute_time(
        self,
        atoms_on_rank: int,
        threads_per_rank: int = 12,
        backend: str = "blas",
        precision: str = "double",
        compressed: bool = True,
        pretranspose: bool = True,
        framework: bool = False,
        batched: bool = True,
        threading_overhead: float = 0.0,
        neighbor_rebuild_every: int = 50,
    ) -> float:
        """Pair-phase time of one rank for one MD step.

        Atoms are distributed over the threads atom-by-atom; the busiest
        thread (``ceil(atoms/threads)``) determines the phase time.  The
        framework's fixed session overhead (one session per thread, running
        concurrently) adds its full latency once.  ``batched=False`` models
        atom-at-a-time inference (every fitting-net GEMM runs with M=1,
        the scalar-reference layout) instead of the vectorized batch.
        """
        if atoms_on_rank < 0:
            raise ValueError("atom count must be non-negative")
        threads_per_rank = max(1, threads_per_rank)
        atoms_per_thread = math.ceil(atoms_on_rank / threads_per_rank) if atoms_on_rank else 0
        per_atom = self.per_atom_time(
            atoms_per_thread=max(atoms_per_thread, 1) if batched else 1,
            backend=backend,
            precision=precision,
            compressed=compressed,
            pretranspose=pretranspose,
            framework=framework,
        )
        time = atoms_per_thread * per_atom
        if framework:
            time += self.machine.framework_overhead
        time += threading_overhead
        # neighbour-list rebuild, amortized over the rebuild cadence
        rebuild = self.neighbor_rebuild_time(atoms_on_rank, threads_per_rank)
        time += rebuild / max(neighbor_rebuild_every, 1)
        # integration / thermostat / bookkeeping
        time += 2.0e-6 + 5.0e-9 * atoms_on_rank
        return time

    # -- neighbour-list rebuild ---------------------------------------------------
    def neighbor_rebuild_time(self, atoms_on_rank: int, threads_per_rank: int = 12) -> float:
        """Time (s) of one binned neighbour-list rebuild on one rank.

        Prices the vectorized binned build the MD engines actually run
        (``repro.md.neighbor._cell_list_pairs``): binning plus a stable sort
        cost ~60 FLOP-equivalents of bookkeeping per atom, and the half
        stencil of unit-sized cells examines ~3.2x more candidate pairs than
        survive the cutoff (~1.6x the padded full-list neighbour count), at
        ~9 FLOPs per candidate for the wrap-and-compare distance filter.
        All of it is streaming work, priced at low arithmetic intensity.
        There is no O(N^2) term: the brute-force search is only reachable
        below ``repro.md.neighbor.BRUTE_FORCE_THRESHOLD`` atoms.
        """
        candidates_per_atom = 1.6 * self.neighbors_per_atom
        flops = (
            (60.0 + 9.0 * candidates_per_atom)
            * max(atoms_on_rank, 1)
            / max(threads_per_rank, 1)
        )
        return self.node_model.flops_time(flops, efficiency=0.10)
