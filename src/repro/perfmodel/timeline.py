"""Assembling per-step phase times into ns/day."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import ns_per_day


@dataclass
class StepTimeline:
    """The modelled time of one MD step, broken into phases (seconds)."""

    timestep_fs: float
    phases: dict[str, float] = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("phase time must be non-negative")
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @property
    def step_time(self) -> float:
        return float(sum(self.phases.values()))

    @property
    def ns_day(self) -> float:
        return ns_per_day(self.step_time, self.timestep_fs)

    def fraction(self, phase: str) -> float:
        total = self.step_time
        if total == 0.0:
            return 0.0
        return self.phases.get(phase, 0.0) / total

    def speedup_over(self, other: "StepTimeline") -> float:
        """How much faster this timeline is than ``other`` (>1 = faster)."""
        if self.step_time == 0.0:
            return float("inf")
        return other.step_time / self.step_time

    def summary(self) -> str:
        lines = [f"{'phase':<12}{'ms':>12}{'%':>8}"]
        total = self.step_time
        for name, seconds in sorted(self.phases.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * seconds / total if total else 0.0
            lines.append(f"{name:<12}{seconds * 1e3:>12.4f}{pct:>7.1f}%")
        lines.append(f"{'total':<12}{total * 1e3:>12.4f}{100.0:>7.1f}%")
        lines.append(f"ns/day = {self.ns_day:.2f} (dt = {self.timestep_fs} fs)")
        return "\n".join(lines)
