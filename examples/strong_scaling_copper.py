"""Strong-scaling scenario: the paper's headline experiment (Fig. 11 + Fig. 9).

Models the 0.54M-atom copper and 0.56M-atom water systems on the Fugaku
machine model, sweeping 768 -> 12,000 nodes with the fully optimized
configuration, and prints the step-by-step optimization ladder at 96 nodes.

Run:  python examples/strong_scaling_copper.py
"""

from __future__ import annotations

from repro.core import DeepMDEngine, baseline_config, copper_spec, optimized_config, water_spec
from repro.core.config import fig9_stage_configs
from repro.core.experiments import FIG11_NODE_COUNTS
from repro.perfmodel import scaling_table


def main() -> None:
    print("Step-by-step optimization ladder (copper, 96 nodes, 1 atom/core):")
    engine = DeepMDEngine(copper_spec())
    reports = engine.optimization_ladder(fig9_stage_configs(), n_nodes=96, atoms_per_core=1)
    base = reports[0].ns_day
    for report in reports:
        print(
            f"  {report.config_name:10s} {report.ns_day:8.2f} ns/day "
            f"({report.ns_day / base:5.2f}x, step {report.step_time_ms:.3f} ms)"
        )

    for spec, n_atoms in ((copper_spec(), 540_000), (water_spec(), 558_000)):
        engine = DeepMDEngine(spec)
        scaling = engine.strong_scaling(optimized_config(), FIG11_NODE_COUNTS, n_atoms=n_atoms)
        table = scaling_table(
            FIG11_NODE_COUNTS,
            [r.ns_day for r in scaling],
            spec.name,
            baseline_ns_day=engine.step_report(baseline_config(), 12_000, n_atoms=n_atoms).ns_day,
        )
        print()
        print(table.to_text(floatfmt=".2f"))
        final = scaling[-1]
        print(
            f"  -> {spec.name}: {final.ns_day:.1f} ns/day on 12,000 nodes "
            f"({final.atoms_per_core:.2f} atoms/core); paper: "
            f"{149.0 if spec.name == 'copper' else 68.5} ns/day"
        )


if __name__ == "__main__":
    main()
