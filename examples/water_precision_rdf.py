"""Water accuracy scenario: Table II and Fig. 6 at example scale.

Trains a small water Deep Potential against the flexible-SPC pseudo-AIMD
reference, then

* reports the single-step energy/force errors under Double, MIX-fp32 and
  MIX-fp16 (the Table II layout), and
* runs short MD under each precision and compares the O-O / O-H / H-H radial
  distribution functions (the Fig. 6 claim: the curves overlap).

Run:  python examples/water_precision_rdf.py
"""

from __future__ import annotations

from repro.core.experiments import (
    fig6_overlap_errors,
    fig6_rdf,
    table2_precision,
    train_water_model,
)


def main() -> None:
    print("Training a small water Deep Potential on the pseudo-AIMD reference...")
    trained = train_water_model(n_molecules=32, n_frames=8, n_epochs=40)
    print(
        f"  training RMSE: {trained.training_result.energy_rmse_per_atom * 1000:.1f} meV/atom "
        f"after {trained.training_result.n_epochs} epochs"
    )

    print("\nTable II — single-step error vs the reference per precision")
    print(table2_precision(trained).to_text(floatfmt=".3e"))

    print("\nFig. 6 — radial distribution functions per precision (short MD)")
    curves = fig6_rdf(trained, n_molecules=32, n_steps=80)
    for precision, pair_curves in curves.items():
        peaks = {pair: rdf.first_peak() for pair, rdf in pair_curves.items()}
        formatted = ", ".join(f"g_{p}: r={r:.2f} A (g={g:.1f})" for p, (r, g) in peaks.items())
        print(f"  {precision:9s} {formatted}")
    errors = fig6_overlap_errors(curves)
    print("  overlap error vs double precision:", {k: round(v, 4) for k, v in errors.items()})
    # At this toy scale (an under-trained model, 20 trajectory frames) the
    # curves are statistics-limited; the paper's Fig. 6 overlap claim is
    # pinned with proper tolerances in tests/test_mixed_precision.py.
    worst = max(errors.values())
    if worst < 0.15:
        print("  -> the three precision curves overlap (the paper's Fig. 6 conclusion)")
    else:
        print(
            f"  -> worst overlap error {worst:.2f}: sampling noise dominates at "
            "example scale; see tests/test_mixed_precision.py for the pinned claim"
        )


if __name__ == "__main__":
    main()
