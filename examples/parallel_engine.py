"""Domain-decomposed MD: run real dynamics across simulated ranks.

This demonstrates the executable counterpart of the paper's parallel runtime:

1. build a water box and run the serial reference ``Simulation``,
2. run the *same* dynamics with ``DomainDecomposedSimulation`` on a 2x2x2
   rank grid (ghost exchange, reverse force scatter, atom migration),
3. verify the trajectories agree to ~1e-10 (the cross-rank parity contract),
4. read the measured per-rank load balance and ghost-exchange volumes, and
5. price the measured exchange on the Fugaku communication model.

Run:  PYTHONPATH=src python examples/parallel_engine.py
"""

from __future__ import annotations

import numpy as np

from repro.md import Simulation, water_system
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation
from repro.perfmodel import CommCostModel, plan_with_measured_volume

N_MOLECULES = 96
N_STEPS = 25


def main() -> None:
    atoms, box, topology = water_system(N_MOLECULES, rng=0, jitter=0.3)
    atoms.initialize_velocities(400.0, rng=1)
    make_ff = lambda: WaterReference(topology, cutoff=4.0)  # noqa: E731
    params = dict(timestep_fs=0.5, neighbor_skin=0.5, neighbor_every=5)

    # 1. serial reference -----------------------------------------------------
    print(f"Water box: {len(atoms)} atoms, L = {box.lengths[0]:.2f} A")
    serial = Simulation(atoms.copy(), box, make_ff(), **params)
    serial.run(N_STEPS)

    # 2. the same dynamics over 8 simulated ranks -----------------------------
    engine = DomainDecomposedSimulation(
        atoms.copy(), box, make_ff(), rank_dims=(2, 2, 2), scheme="p2p", **params
    )
    report = engine.run(N_STEPS)

    # 3. cross-rank parity ----------------------------------------------------
    gathered = engine.gather()
    drift = np.abs(gathered.positions - serial.atoms.positions).max()
    print(f"\n2x2x2 engine vs serial after {N_STEPS} steps:")
    print(f"  max position deviation : {drift:.3e} A")
    print(f"  neighbour rebuilds     : {report.neighbor_builds} (serial: {serial.neighbor_list.n_builds})")
    print(f"  atoms migrated         : {engine.n_migrated}")
    print("\nPer-phase timers (note the comm phase):")
    print(engine.timers.summary())

    # 4. measured statistics --------------------------------------------------
    balance = engine.load_balance_stats()
    print("\nMeasured per-rank load balance:")
    print(f"  atoms  : {balance.atom_stats().summary()}")
    print(f"  ghosts : {engine.ghost_stats().summary()}")
    volume = engine.measured_comm_volume()
    print(f"  ghost exchange: {volume['mean_ghosts_per_rank']:.1f} atoms/rank/exchange "
          f"over {volume['exchanges']} exchanges")

    # 5. price the measured exchange on the machine model ---------------------
    plan = engine.modelled_plan("p2p-utofu")
    scaled = plan_with_measured_volume(plan, volume["forward_bytes_per_rank"])
    model = CommCostModel()
    print("\nFugaku-model exchange time for this decomposition:")
    print(f"  modelled volume : {model.exchange_time(plan) * 1e6:8.2f} us/step")
    print(f"  measured volume : {model.exchange_time(scaled) * 1e6:8.2f} us/step")


if __name__ == "__main__":
    main()
