"""Quickstart: train a small Deep Potential on pseudo-AIMD copper data and run MD.

This walks the full pipeline the paper's system implements:

1. generate reference (pseudo-AIMD) data with the Gupta many-body potential,
2. train a Deep Potential (embedding + fitting nets) on per-atom energies,
3. evaluate energies/forces with the optimized framework-free kernels under
   a mixed-precision policy, and
4. run a short MD simulation with the trained model as the force field.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.deepmd import (
    DeepPotential,
    DeepPotentialConfig,
    DeepPotentialForceField,
    GemmBackend,
    Trainer,
    generate_copper_dataset,
)
from repro.md import LangevinThermostat, Simulation, copper_system
from repro.md.neighbor import build_neighbor_data


def main() -> None:
    # 1. reference data -------------------------------------------------------
    print("Generating pseudo-AIMD copper reference data (Gupta potential)...")
    dataset = generate_copper_dataset(n_frames=10, n_cells=(2, 2, 2), cutoff=3.6, rng=0)
    print(f"  {len(dataset)} frames, {dataset.energy_statistics()}")

    # 2. train a small Deep Potential ----------------------------------------
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=3.6,
        cutoff_smooth=3.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(32, 32),
        max_neighbors=32,
        seed=1,
    )
    model = DeepPotential(config)
    trainer = Trainer(model, dataset, learning_rate=5e-3, rng=2)
    print("Training the Deep Potential (per-atom energy matching)...")
    result = trainer.train(n_epochs=60)
    print(f"  loss {result.loss_history[0]:.3e} -> {result.final_loss:.3e}, "
          f"energy RMSE {result.energy_rmse_per_atom * 1000:.1f} meV/atom")

    # 3. evaluate with the optimized kernels -----------------------------------
    atoms, box = copper_system((3, 3, 3), perturbation=0.05, rng=3)
    neighbors = build_neighbor_data(atoms.positions, box, config.cutoff)
    backend = GemmBackend(kind="sve")
    for precision in ("double", "mix-fp32", "mix-fp16"):
        output = model.evaluate(atoms, box, neighbors, precision=precision, backend=backend)
        print(f"  {precision:9s} E = {output.energy:12.6f} eV   max|F| = {np.abs(output.forces).max():.4f} eV/A")
    print(f"  GEMM calls issued: {backend.stats.calls} ({backend.stats.sve_calls} via the sve kernel)")

    # 4. short MD with the trained potential -----------------------------------
    print("Running 50 MD steps at 300 K with the Deep Potential force field...")
    atoms.initialize_velocities(300.0, rng=4)
    force_field = DeepPotentialForceField(model, precision="mix-fp32", gemm_backend=backend)
    simulation = Simulation(
        atoms, box, force_field, timestep_fs=1.0, neighbor_skin=0.5,
        thermostat=LangevinThermostat(300.0, damping_fs=100.0, rng=5),
    )
    report = simulation.run(50, sample_every=10)
    print(f"  mean temperature {report.mean_temperature:.0f} K over {report.n_steps} steps")
    print(report.timers.summary())


if __name__ == "__main__":
    main()
