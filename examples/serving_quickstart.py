"""Quickstart: serve many small systems through one batched Deep Potential.

Demonstrates the PR 9 serving subsystem end to end:

1. build a small Deep Potential and a ``ServingEngine`` on top of it
   (compressed tables and standardization stats are cached once per model),
2. submit a burst of energy/force one-shots from concurrent "clients" and
   watch the admission window coalesce them into fused batched evaluations,
3. submit short MD bursts that advance in lockstep through the same batched
   kernels, and
4. cross-check a few answers against the frozen serial reference
   (``repro.serving.serial``) at 1e-10.

Run:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import threading

import numpy as np

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.md.atoms import Atoms
from repro.md.box import Box
from repro.serving import ServingEngine, evaluate_serial, prepare_system


def make_cluster(n_atoms: int, rng: int):
    """A molecule-sized jittered cluster in a large open box."""
    r = np.random.default_rng(rng)
    grid = np.stack(np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), axis=-1)
    positions = grid.reshape(-1, 3)[:n_atoms] * 2.4 + r.normal(scale=0.15, size=(n_atoms, 3)) + 2.0
    atoms = Atoms(
        positions=positions,
        types=np.zeros(n_atoms, dtype=np.int64),
        masses=np.full(n_atoms, 63.546),
    )
    return atoms, Box.cubic(40.0, periodic=False)


def main() -> None:
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=16,
        seed=0,
    )
    model = DeepPotential(config)

    # -- 1. the engine: caches built once, pipeline threads on start() ------
    engine = ServingEngine(model, max_batch_size=16, max_wait_ms=5.0)

    with engine:
        # -- 2. concurrent one-shot clients --------------------------------
        results: dict[int, object] = {}

        def client(cid: int) -> None:
            atoms, box = make_cluster(4 + cid % 5, rng=100 + cid)
            results[cid] = engine.submit(atoms, box).result(timeout=120)

        threads = [threading.Thread(target=client, args=(cid,)) for cid in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        stats = engine.stats
        latency = stats.latency_ms()
        print(f"served {stats.n_requests} one-shots in {stats.n_batches} fused batches "
              f"(mean width {stats.mean_batch_size():.1f})")
        print(f"latency p50 {latency['p50']:.2f} ms, p99 {latency['p99']:.2f} ms "
              f"(queue wait {latency['wait_mean']:.2f} ms of that)")
        print(f"cache probe: {engine.cache_probe()}")

        # -- 3. a lockstep MD burst group ----------------------------------
        burst_futures = [
            engine.submit_md(*make_cluster(6, rng=200 + k), n_steps=5, timestep_fs=0.5)
            for k in range(4)
        ]
        for k, future in enumerate(burst_futures):
            burst = future.result(timeout=300)
            print(f"burst {k}: {burst.n_steps} steps, "
                  f"final E = {burst.energies[-1]:+.6f} eV")

    # -- 4. spot-check against the frozen serial reference ------------------
    atoms, box = make_cluster(7, rng=999)
    system = prepare_system(model, atoms, box)
    (reference,) = evaluate_serial(
        model, [system], compressed=True, compression_table=model.compressed_embeddings()
    )
    with ServingEngine(model, max_batch_size=4, max_wait_ms=1.0) as check_engine:
        served = check_engine.submit(atoms, box).result(timeout=120)
    assert abs(served.energy - reference.energy) < 1e-10
    assert np.abs(served.forces - reference.forces).max() < 1e-10
    print(f"serial parity check OK (|dE| = {abs(served.energy - reference.energy):.2e})")


if __name__ == "__main__":
    main()
