"""Communication scenario: compare ghost-exchange schemes on the Fugaku model.

Reproduces the structure of Fig. 7 (and the Fig. 8 memory-pool study) for a
96-node copper run, and verifies on real coordinates that the node-based
exchange delivers every ghost atom the p2p pattern would (the correctness
property behind the 81 % communication reduction).

Run:  python examples/communication_schemes.py
"""

from __future__ import annotations

from repro.core.experiments import fig7_comm_schemes, fig8_memory_pool
from repro.md import copper_system
from repro.parallel import GhostExchangeSimulator, RankTopology, SpatialDecomposition


def main() -> None:
    print("Fig. 7 — ghost-exchange time per communication scheme (modelled):")
    table = fig7_comm_schemes(cutoffs=(8.0,), subbox_factors=((1, 1, 1), (0.5, 0.5, 0.5)))
    print(table.to_text(floatfmt=".3f"))

    print("\nFig. 8 — RDMA buffer pool vs per-neighbour registration (modelled):")
    print(fig8_memory_pool(neighbor_counts=(26, 60, 124), iterations=10_000).to_text(floatfmt=".4f"))

    print("\nCorrectness check of the schemes on real coordinates (8 ranks, 2x2x2 nodes):")
    atoms, box = copper_system((6, 6, 6), perturbation=0.05, rng=0)
    decomposition = SpatialDecomposition(box, RankTopology((2, 2, 2)))
    simulator = GhostExchangeSimulator(decomposition, cutoff=5.0)
    for rank in range(0, decomposition.topology.n_ranks, 7):
        checks = simulator.verify_rank(rank, atoms.positions)
        print(
            f"  rank {rank:2d}: p2p delivers the exact ghost set: {checks['p2p_exact']}; "
            f"node-based covers it: {checks['node_covers']} "
            f"({checks['reference_size']} needed, {checks['node_size']} delivered)"
        )


if __name__ == "__main__":
    main()
