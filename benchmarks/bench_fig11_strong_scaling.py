"""Fig. 11 — strong scaling of the optimized code from 768 to 12,000 nodes."""

from repro.core.experiments import end_to_end_speedup, fig11_strong_scaling


def test_fig11_strong_scaling(benchmark):
    table = benchmark.pedantic(
        fig11_strong_scaling, kwargs={"systems": ("copper", "water")}, rounds=1, iterations=1
    )
    print()
    print(table.to_text(floatfmt=".2f"))
    records = table.to_records()
    for system in ("copper", "water"):
        series = [r for r in records if r["system"] == system]
        ns_day = [r["ns/day"] for r in series]
        eff = [r["parallel efficiency %"] for r in series]
        # monotonically improving time-to-solution with diminishing efficiency
        assert all(b >= a * 0.995 for a, b in zip(ns_day, ns_day[1:]))
        assert eff[0] == 100.0
        assert 30.0 < eff[-1] < 100.0
    copper_12k = next(r for r in records if r["system"] == "copper" and r["nodes"] == 12000)
    water_12k = next(r for r in records if r["system"] == "water" and r["nodes"] == 12000)
    # headline rates: >100 ns/day for copper, >50 ns/day for water (paper: 149 / 68.5)
    assert copper_12k["ns/day"] > 100.0
    assert water_12k["ns/day"] > 50.0

    speedup = end_to_end_speedup()
    print(f"end-to-end speedup vs baseline configuration at 12,000 nodes: {speedup:.1f}x (paper: 31.7x vs prior state of the art)")
