"""Fig. 8 — RDMA memory pool vs per-neighbour registration."""

from repro.core.experiments import fig8_memory_pool


def test_fig8_memory_pool(benchmark):
    table = benchmark.pedantic(
        fig8_memory_pool,
        kwargs={"neighbor_counts": (26, 44, 60, 80, 100, 124), "iterations": 10_000},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text(floatfmt=".4f"))
    records = table.to_records()
    pooled = {r["neighbors"]: r["time [s]"] for r in records if r["buffers"] == "buf_pool"}
    unpooled = {r["neighbors"]: r["time [s]"] for r in records if r["buffers"] == "no_buf_pool"}

    # pooled times grow linearly with the neighbour count
    assert pooled[124] / pooled[26] == abs(pooled[124] / pooled[26])
    # at few neighbours the two variants coincide; beyond the NIC cache
    # capacity (~44 neighbours) the per-neighbour registration degrades
    assert unpooled[26] < 1.1 * pooled[26]
    assert unpooled[124] > 1.3 * pooled[124]
    # degradation grows with the neighbour count
    assert (unpooled[124] / pooled[124]) > (unpooled[60] / pooled[60])
