"""Table III — pair time and atom numbers across MPI ranks (load balance)."""

from repro.core.experiments import dispersion_reduction, table3_loadbalance


def test_table3_loadbalance(benchmark):
    table = benchmark.pedantic(
        table3_loadbalance,
        kwargs={"system_name": "water", "atoms_per_core": (1, 2, 8)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text(floatfmt=".2f"))
    records = table.to_records()

    def row(case, lb, metric):
        for r in records:
            if r["case"] == case and r["lb"] == lb and r["metric"] == metric:
                return r
        raise KeyError((case, lb, metric))

    for apc in (1, 2):
        case = f"{apc} atom/core"
        natom_no = row(case, "no", "natom")
        natom_yes = row(case, "yes", "natom")
        pair_no = row(case, "no", "pair")
        pair_yes = row(case, "yes", "pair")
        # the intra-node balance reduces the atom-count dispersion and the
        # worst-case rank (the paper's Table III shows the SDMR cut to a
        # fraction; the synthetic water coordinates give a smaller but still
        # clear reduction at 1 atom/core and a strong one at 2 atoms/core)
        assert natom_yes["SDMR%"] < natom_no["SDMR%"]
        assert natom_yes["max"] <= natom_no["max"]
        # and the slowest rank's pair time drops
        assert pair_yes["max"] <= pair_no["max"] * 1.02

    reduction = dispersion_reduction("copper", atoms_per_core=1)
    print(f"atomic dispersion reduction (copper, 1 atom/core): {reduction:.1%} (paper: 79.7%)")
