"""Run-loop throughput: preallocated workspaces vs the allocating loop.

The unified stepping core (``md/stepping.py``) threads a per-step
:class:`~repro.md.workspace.Workspace` through the force fields, the
integrator and the engine's gather/scatter arrays, so a steady-state MD step
performs near-zero fresh ``np.zeros``/``np.empty`` allocations and the
Newton pair scatter runs through ``np.bincount`` instead of the
``np.add.at`` scalar loop.  ``use_workspace=False`` runs the original
allocating code paths bit-for-bit (the pre-PR loop, kept as the golden
baseline the same way ``deepmd/scalar.py`` and ``_brute_force_pairs`` are),
which makes the comparison here a true before/after of the same dynamics.

Two guards:

* **steps/sec** — the workspace path must be >= 1.15x the allocating loop on
  a ~900-atom LJ system (~1.5x measured on this container);
* **allocation budget** — a steady-state step (no rebuild, no migration)
  must perform at most ``ALLOCATION_BUDGET`` explicit NumPy array
  allocations (``np.zeros``/``np.empty``/``np.full``/``np.ones`` and their
  ``_like`` variants), counted by monkeypatching the allocators.

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_run_loop.py
"""

from __future__ import annotations

import time

import numpy as np

import pytest

from repro.md import LennardJones, Simulation, copper_system, water_system
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation

#: ~900 atoms: the scale the issue's acceptance criterion names (and large
#: enough that the pair phase, not Python overhead, dominates).
SYSTEM_CELLS = (6, 6, 6)
SPEEDUP_TARGET = 1.15
#: explicit allocator calls allowed per steady-state step (measured: 0).
ALLOCATION_BUDGET = 2

_COUNTED_ALLOCATORS = (
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
)


def _lj_simulation(use_workspace: bool) -> Simulation:
    atoms, box = copper_system(SYSTEM_CELLS, perturbation=0.05, rng=0)
    atoms.initialize_velocities(300.0, rng=1)
    return Simulation(
        atoms,
        box,
        LennardJones(0.05, 2.3, 5.0),
        timestep_fs=1.0,
        neighbor_skin=2.0,
        neighbor_every=50,
        use_workspace=use_workspace,
    )


def _best_steps_per_second(sim: Simulation, n_steps: int = 50, repeats: int = 3) -> float:
    sim.run(10, sample_every=0)  # warm up: fills pools, settles the caches
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim.run(n_steps, sample_every=1)
        best = max(best, n_steps / (time.perf_counter() - start))
    return best


class _AllocationCounter:
    """Counts explicit NumPy array allocations while active."""

    def __init__(self) -> None:
        self.count = 0
        self._originals: dict[str, object] = {}

    def __enter__(self) -> "_AllocationCounter":
        for name in _COUNTED_ALLOCATORS:
            original = getattr(np, name)
            self._originals[name] = original

            def counted(*args, _original=original, **kwargs):
                self.count += 1
                return _original(*args, **kwargs)

            setattr(np, name, counted)
        return self

    def __exit__(self, *exc) -> None:
        for name, original in self._originals.items():
            setattr(np, name, original)


def test_workspace_loop_speedup_and_parity():
    """>= 1.15x steps/sec, with the trajectory pinned to the reference loop."""
    reference = _lj_simulation(use_workspace=False)
    pooled = _lj_simulation(use_workspace=True)

    # same dynamics first: 40 steps across a rebuild stay within 1e-10
    reference.run(40)
    pooled.run(40)
    np.testing.assert_allclose(
        pooled.atoms.positions, reference.atoms.positions, rtol=0.0, atol=1e-10
    )
    np.testing.assert_allclose(
        pooled.atoms.forces, reference.atoms.forces, rtol=0.0, atol=1e-10
    )

    slow = _best_steps_per_second(_lj_simulation(use_workspace=False))
    fast = _best_steps_per_second(_lj_simulation(use_workspace=True))
    speedup = fast / slow
    print(
        f"\nrun loop ({len(reference.atoms)} atoms LJ): "
        f"allocating {slow:.1f} steps/s, workspace {fast:.1f} steps/s "
        f"-> {speedup:.2f}x (target >= {SPEEDUP_TARGET}x)"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"workspace loop only {speedup:.2f}x over the allocating loop "
        f"(expected >= {SPEEDUP_TARGET}x)"
    )


def _water_simulation() -> Simulation:
    atoms, box, topology = water_system(64, rng=4, jitter=0.1)
    atoms.initialize_velocities(120.0, rng=5)
    return Simulation(
        atoms,
        box,
        WaterReference(topology, cutoff=4.0),
        timestep_fs=0.25,
        neighbor_skin=1.5,
        neighbor_every=50,
    )


def _dp_mixed_simulation() -> Simulation:
    """A compressed MIX-fp32 Deep Potential run: the mixed-precision fast
    path must hold the same steady-state budget as the double path (the
    per-call ``astype`` weight churn this guards against predates the cached
    low-precision operands)."""
    from repro.deepmd import DeepPotential, DeepPotentialConfig
    from repro.deepmd.pair_style import DeepPotentialForceField

    atoms, box, _ = water_system(64, rng=6, jitter=0.1)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=4.0,
        cutoff_smooth=3.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=48,
        seed=6,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(6)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(2, config.descriptor_dim)),
        0.5 + rng.random((2, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-2.0, -0.5]))
    atoms.initialize_velocities(120.0, rng=7)
    return Simulation(
        atoms,
        box,
        DeepPotentialForceField(
            model, precision="mix-fp32", compressed=True, compression_points=256
        ),
        timestep_fs=0.25,
        neighbor_skin=1.5,
        neighbor_every=50,
    )


@pytest.mark.parametrize(
    "make_sim",
    [lambda: _lj_simulation(use_workspace=True), _water_simulation, _dp_mixed_simulation],
    ids=["lj", "water", "dp-mix-fp32"],
)
def test_steady_state_allocation_budget(make_sim):
    """Steady-state steps run out of the workspace pool, not the allocator."""
    sim = make_sim()
    sim.neighbor_list.rebuild_every = 0  # rebuilds only on the skin criterion
    sim.run(10)  # fills every pool and settles the neighbour list
    builds_before = sim.neighbor_list.n_builds
    n_steps = 20
    with _AllocationCounter() as counter:
        sim.run(n_steps, sample_every=1)
    assert sim.neighbor_list.n_builds == builds_before, (
        "a neighbour rebuild landed in the measurement window; "
        "the budget only applies to steady-state steps"
    )
    per_step = counter.count / n_steps
    print(f"explicit allocations per steady-state step: {per_step:.2f} (budget {ALLOCATION_BUDGET})")
    assert per_step <= ALLOCATION_BUDGET


def test_engine_steady_state_reuses_rank_pools():
    """The engine's per-rank workspaces stop missing once shapes settle."""
    atoms, box = copper_system((4, 4, 4), perturbation=0.05, rng=2)
    atoms.initialize_velocities(200.0, rng=3)
    engine = DomainDecomposedSimulation(
        atoms, box, LennardJones(0.05, 2.3, 5.0), timestep_fs=1.0,
        rank_dims=(2, 2, 1), neighbor_skin=2.0, neighbor_every=0,
    )
    engine.run(5)
    misses = [domain.workspace.misses for domain in engine.domains]
    builds = engine.n_builds
    engine.run(10)
    assert engine.n_builds == builds, "steady-state window must not rebuild"
    for domain, before in zip(engine.domains, misses):
        assert domain.workspace.misses == before, (
            f"rank {domain.rank} workspace reallocated in steady state"
        )
        assert domain.workspace.hits > 0
