"""Serving throughput: fused cross-system batching vs the serial request loop.

The PR 9 gates:

* **parity first** — the batched evaluator agrees with the frozen serial
  reference (:mod:`repro.serving.serial`) at 1e-10 in fp64 on the benchmark
  batch; the timing means nothing if the physics drifted.
* **>= 5x aggregate throughput** for a batch of 32 molecule-sized systems
  over the one-at-a-time loop (~7-8x measured on this container).  Both
  sides evaluate *prebuilt* environments: packing/neighbour work is the prep
  stage of the serving pipeline and overlaps inference on the previous batch
  (see :class:`repro.serving.engine.ServingEngine`), so the gate isolates
  what batching actually changes — one fused embedding/fitting GEMM and one
  packed Hermite table pass instead of 32 under-filled ones.
* **zero allocator calls** in the steady-state batched evaluator: with a warm
  workspace, ``evaluate_many`` runs entirely out of the pool (the PR 4
  budget, extended to the serving path).
* **latency report** — p50/p99 and systems/sec through the threaded engine at
  1/8/64 concurrent closed-loop clients (reported, not gated: this container
  may have a single core, where thread overlap cannot help wall-clock).

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_serving_throughput.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.md.atoms import Atoms
from repro.md.box import Box
from repro.md.workspace import Workspace
from repro.serving import ServingEngine, evaluate_serial, pack_systems, prepare_system

#: Minimum accepted aggregate-throughput speedup, batch of 32 vs serial.
TARGET_SPEEDUP = 5.0
#: fp64 agreement between the batched path and the serial golden reference.
PARITY_ATOL = 1.0e-10
#: Systems per batch for the headline gate.
BATCH_SIZE = 32
#: Atoms per system: molecule-sized, the regime serving batching targets.
SYSTEM_ATOMS = 4

_COUNTED_ALLOCATORS = (
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
)


class _AllocationCounter:
    """Counts explicit NumPy array allocations while active."""

    def __init__(self) -> None:
        self.count = 0
        self._originals: dict[str, object] = {}

    def __enter__(self) -> "_AllocationCounter":
        for name in _COUNTED_ALLOCATORS:
            original = getattr(np, name)
            self._originals[name] = original

            def counted(*args, _original=original, **kwargs):
                self.count += 1
                return _original(*args, **kwargs)

            setattr(np, name, counted)
        return self

    def __exit__(self, *exc) -> None:
        for name, original in self._originals.items():
            setattr(np, name, original)


def _serving_model(seed: int = 9) -> DeepPotential:
    """A small short-cutoff model matched to molecule-sized requests."""
    config = DeepPotentialConfig(
        type_names=("Cu",),
        cutoff=4.5,
        cutoff_smooth=3.5,
        embedding_sizes=(6, 12),
        axis_neurons=4,
        fitting_sizes=(16, 16),
        max_neighbors=16,
        seed=seed,
    )
    return DeepPotential(config)


def _cluster(n_atoms: int, rng: int):
    r = np.random.default_rng(rng)
    grid = np.stack(np.meshgrid(*[np.arange(3)] * 3, indexing="ij"), axis=-1)
    positions = grid.reshape(-1, 3)[:n_atoms] * 2.4 + r.normal(scale=0.15, size=(n_atoms, 3)) + 2.0
    atoms = Atoms(
        positions=positions,
        types=np.zeros(n_atoms, dtype=np.int64),
        masses=np.full(n_atoms, 63.546),
    )
    return atoms, Box.cubic(40.0, periodic=False)


def _request_batch(model, n_systems: int, rng0: int = 400):
    return [prepare_system(model, *_cluster(SYSTEM_ATOMS, rng0 + i)) for i in range(n_systems)]


def _best_seconds(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_serving_batch_throughput_and_parity():
    """Batch of 32: >= 5x the serial loop, pinned to it at 1e-10 first."""
    model = _serving_model()
    systems = _request_batch(model, BATCH_SIZE)
    table = model.compressed_embeddings()

    # --- parity gate before any timing
    reference = evaluate_serial(model, systems, compressed=True, compression_table=table)
    workspace = Workspace()
    batch = pack_systems(model, systems, workspace=workspace)
    out = model.evaluate_many(
        batch.env,
        batch.system_of_atom,
        batch.offsets,
        compressed=True,
        compression_table=table,
        workspace=workspace,
    )
    for s, ref in enumerate(reference):
        rows = batch.system_slice(s)
        assert abs(out.energies[s] - ref.energy) < PARITY_ATOL
        np.testing.assert_allclose(out.forces[rows], ref.forces, rtol=0.0, atol=PARITY_ATOL)
        np.testing.assert_allclose(out.virials[s], ref.virial, rtol=0.0, atol=PARITY_ATOL)

    # --- aggregate throughput: both sides evaluate prebuilt environments
    environments = [model.build_environment(a, b, nd) for a, b, nd in systems]

    def serial_loop():
        for (atoms, box, neighbors), env in zip(systems, environments):
            model.evaluate(
                atoms,
                box,
                neighbors,
                compressed=True,
                compression_table=table,
                environment=env,
            )

    def batched_once():
        model.evaluate_many(
            batch.env,
            batch.system_of_atom,
            batch.offsets,
            compressed=True,
            compression_table=table,
            workspace=workspace,
        )

    serial_loop()
    batched_once()  # warm every pool and cache before timing
    serial_seconds = _best_seconds(serial_loop)
    batched_seconds = _best_seconds(batched_once)
    speedup = serial_seconds / batched_seconds
    per_sec_serial = BATCH_SIZE / serial_seconds
    per_sec_batched = BATCH_SIZE / batched_seconds
    print()
    print(
        f"Serving aggregate throughput, batch of {BATCH_SIZE} x "
        f"{SYSTEM_ATOMS}-atom systems (compressed, fp64)"
    )
    print(f"  serial loop  : {serial_seconds * 1e3:7.2f} ms  ({per_sec_serial:8.0f} systems/s)")
    print(f"  fused batch  : {batched_seconds * 1e3:7.2f} ms  ({per_sec_batched:8.0f} systems/s)")
    print(f"  speedup      : {speedup:7.2f}x (target >= {TARGET_SPEEDUP:.0f}x)")
    assert speedup >= TARGET_SPEEDUP, (
        f"fused batch of {BATCH_SIZE} reached only {speedup:.2f}x over the serial "
        f"loop (>= {TARGET_SPEEDUP:.0f}x required)"
    )


def test_bench_serving_steady_state_evaluator_is_allocation_free():
    """With a warm workspace, the batched evaluator makes zero allocator calls."""
    model = _serving_model(seed=10)
    systems = _request_batch(model, BATCH_SIZE, rng0=500)
    table = model.compressed_embeddings()
    workspace = Workspace()
    batch = pack_systems(model, systems, workspace=workspace)

    def evaluate():
        model.evaluate_many(
            batch.env,
            batch.system_of_atom,
            batch.offsets,
            compressed=True,
            compression_table=table,
            workspace=workspace,
        )

    evaluate()
    evaluate()  # second call guarantees every pool buffer exists
    n_steps = 5
    with _AllocationCounter() as counter:
        for _ in range(n_steps):
            evaluate()
    print(f"\nexplicit allocations per steady-state batched evaluation: "
          f"{counter.count / n_steps:.2f} (budget 0)")
    assert counter.count == 0, (
        f"{counter.count} explicit allocator calls in {n_steps} steady-state "
        "batched evaluations (expected 0: the evaluator must run out of the pool)"
    )


def _closed_loop_clients(model, n_clients: int, requests_per_client: int):
    """Drive the threaded engine with closed-loop clients; returns the stats."""
    engine = ServingEngine(model, max_batch_size=BATCH_SIZE, max_wait_ms=2.0)
    completed = []
    errors = []

    def client(cid: int):
        try:
            for k in range(requests_per_client):
                atoms, box = _cluster(SYSTEM_ATOMS, 700 + 31 * cid + k)
                engine.submit(atoms, box).result(timeout=300)
                completed.append(1)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    with engine:
        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(cid,)) for cid in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
    assert errors == []
    assert len(completed) == n_clients * requests_per_client
    return engine.stats, len(completed) / elapsed


def test_bench_serving_client_latency_report():
    """p50/p99 latency and systems/sec at 1/8/64 concurrent clients."""
    model = _serving_model(seed=11)
    # warm the model caches once so the first client doesn't pay table builds
    warm = _request_batch(model, 2, rng0=600)
    evaluate_serial(model, warm, compressed=True, compression_table=model.compressed_embeddings())

    print()
    print("Serving latency under concurrent closed-loop clients "
          f"({SYSTEM_ATOMS}-atom systems, admission window 2 ms):")
    print("  clients   p50 ms   p99 ms   mean batch   systems/s")
    throughput = {}
    for n_clients in (1, 8, 64):
        requests = 40 if n_clients == 1 else max(4, 320 // n_clients)
        stats, systems_per_sec = _closed_loop_clients(model, n_clients, requests)
        latency = stats.latency_ms()
        throughput[n_clients] = systems_per_sec
        print(
            f"  {n_clients:7d}  {latency['p50']:7.2f}  {latency['p99']:7.2f}  "
            f"{stats.mean_batch_size():11.2f}  {systems_per_sec:10.0f}"
        )
        assert latency["p99"] >= latency["p50"] > 0.0
        assert systems_per_sec > 0.0
    # concurrency must widen the admitted batches; wall-clock gains are not
    # gated here (a 1-core container cannot overlap threads), but the fused
    # evaluation makes aggregate throughput under load at least hold its own
    assert throughput[64] > throughput[1], (
        "64 concurrent clients produced lower aggregate throughput than a "
        "single closed-loop client despite admission batching"
    )
