"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md for the experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag shows the regenerated rows/series next to the timing data.
"""

from __future__ import annotations

import pytest

from repro.core.experiments import train_water_model


@pytest.fixture(scope="session")
def trained_water_model():
    """A small trained water Deep Potential shared by Table II and Fig. 6."""
    return train_water_model(n_molecules=32, n_frames=8, n_epochs=30)
