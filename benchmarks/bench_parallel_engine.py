"""Domain-decomposed engine throughput vs rank count (~1k-atom water box).

Runs the same dynamics on 1, 2, 4 and 8 simulated ranks and reports steps/sec
plus the measured per-rank pair and neighbour-build times.  Because the ranks
execute *sequentially in-process* the wall-clock does not drop with rank
count — what must drop is the *work each rank performs*, which is exactly the
quantity the paper's strong scaling rides on.  The assertions pin that sanity
curve: the mean per-rank pair time shrinks as the domain grid grows, and the
per-rank neighbour build (the vectorized binned build of ``md/neighbor.py``,
timed under the ``neigh`` phase) stays a small fraction of the per-rank pair
work.

``test_bench_executor_strong_scaling`` is where the wall-clock *does* drop:
the multiprocess executor runs the same ranks concurrently on a ~11k-atom LJ
system, bitwise-identical to the sequential golden reference, and must beat
it by >= 2x at 4 workers when the container actually has 4 cores (on fewer
cores the guard degrades to an overhead floor — concurrency cannot help a
machine that has nowhere to run it).

``test_bench_node_box_sdmr`` prints the measured Table III: the node-box
organization's measured atom-count SDMR next to the
:class:`IntraNodeLoadBalancer` prediction it must reproduce.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_engine.py -s
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.md import LennardJones, copper_system, water_system
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation, IntraNodeLoadBalancer

N_MOLECULES = 333  # 999 atoms
N_STEPS = 10
GRIDS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]


def _engine(atoms, box, topology, rank_dims):
    return DomainDecomposedSimulation(
        atoms.copy(),
        box,
        WaterReference(topology, cutoff=4.0),
        timestep_fs=0.5,
        rank_dims=rank_dims,
        scheme="p2p",
        neighbor_skin=0.5,
        neighbor_every=5,
    )


def test_bench_parallel_engine():
    atoms, box, topology = water_system(N_MOLECULES, rng=17)
    atoms.initialize_velocities(350.0, rng=18)

    rows = []
    for rank_dims in GRIDS:
        engine = _engine(atoms, box, topology, rank_dims)
        report = engine.run(N_STEPS)
        pair_times = engine.load_balance_stats().pair_times
        mean_pair = float(pair_times.mean()) / N_STEPS
        builds = max(engine.n_builds, 1)
        mean_neigh = float(engine.neighbor_build_times().mean()) / builds
        rows.append(
            {
                "ranks": engine.n_ranks,
                "steps_per_sec": report.steps_per_second,
                "pair_ms_per_rank_step": 1.0e3 * mean_pair,
                "neigh_ms_per_rank_build": 1.0e3 * mean_neigh,
                "mean_ghosts": engine.measured_comm_volume()["mean_ghosts_per_rank"],
                "comm_frac": report.timers.fraction("comm"),
            }
        )

    print("\nDomain-decomposed water box (999 atoms, 10 steps, p2p delivery)")
    print(
        f"{'ranks':>5} {'steps/s':>9} {'pair ms/rank/step':>18} "
        f"{'neigh ms/rank/build':>20} {'ghosts/rank':>12} {'comm %':>7}"
    )
    for row in rows:
        print(
            f"{row['ranks']:>5} {row['steps_per_sec']:>9.2f} "
            f"{row['pair_ms_per_rank_step']:>18.3f} "
            f"{row['neigh_ms_per_rank_build']:>20.3f} {row['mean_ghosts']:>12.1f} "
            f"{100.0 * row['comm_frac']:>6.1f}%"
        )

    # The strong-scaling sanity curve: every decomposition shrinks the pair
    # work of a single rank, and the 8-rank grid at least halves it.
    single = rows[0]["pair_ms_per_rank_step"]
    for row in rows[1:]:
        assert row["pair_ms_per_rank_step"] < single, (
            f"{row['ranks']} ranks did not reduce the per-rank pair time"
        )
    assert rows[-1]["pair_ms_per_rank_step"] < 0.5 * single
    # every decomposition yields a throughput figure
    assert all(row["steps_per_sec"] > 0.0 for row in rows)
    # one vectorized per-rank neighbour build must cost less than the whole
    # run's pair work on that rank (pre-PR, the O(n_local^2) brute-force
    # builds at this size were the same order as the full run)
    for row in rows:
        assert row["neigh_ms_per_rank_build"] < row["pair_ms_per_rank_step"] * N_STEPS, (
            f"{row['ranks']} ranks: one neighbour build "
            f"({row['neigh_ms_per_rank_build']:.3f} ms) outweighs the whole "
            f"{N_STEPS}-step run's pair work"
        )


# ---------------------------------------------------------------------------
# Real concurrency: multiprocess executor strong scaling (~11k atoms)
# ---------------------------------------------------------------------------

SCALING_STEPS = 10
#: pipe/slab dispatch overhead budget when the host cannot run workers in
#: parallel at all: even time-sliced onto a single core (~0.2x measured on a
#: 1-core container), 4 workers must retain this fraction of the sequential
#: throughput — a runaway-overhead backstop, not a performance target.
SINGLE_CORE_FLOOR = 0.15


def _visible_cores() -> int:
    """CPU cores this process can actually run on, cgroup quotas included.

    ``sched_getaffinity`` alone over-reports inside quota-limited containers
    (CI runners typically cap CPU via the cgroup CFS quota while leaving the
    affinity mask at the host width), which would arm the 2x strong-scaling
    gate on a box that can only time-slice one core.  Take the minimum of the
    affinity mask and the cgroup v2 (``cpu.max``) or v1
    (``cpu.cfs_quota_us``/``cpu.cfs_period_us``) quota, when one is set.
    """
    cores = len(os.sched_getaffinity(0))
    try:  # cgroup v2
        with open("/sys/fs/cgroup/cpu.max") as fh:
            quota, period = fh.read().split()[:2]
        if quota != "max":
            cores = min(cores, max(1, int(int(quota) / int(period))))
    except (OSError, ValueError):
        try:  # cgroup v1
            with open("/sys/fs/cgroup/cpu/cpu.cfs_quota_us") as fh:
                quota = int(fh.read())
            with open("/sys/fs/cgroup/cpu/cpu.cfs_period_us") as fh:
                period = int(fh.read())
            if quota > 0:
                cores = min(cores, max(1, quota // period))
        except (OSError, ValueError):
            pass
    return cores


def _scaling_engine(atoms, box, executor, n_workers=None):
    return DomainDecomposedSimulation(
        atoms.copy(),
        box,
        LennardJones(0.05, 2.3, 5.0),
        timestep_fs=2.0,
        rank_dims=(2, 2, 1),
        scheme="p2p",
        neighbor_skin=0.4,
        neighbor_every=5,
        executor=executor,
        n_workers=n_workers,
    )


def test_bench_executor_strong_scaling():
    atoms, box = copper_system((14, 14, 14), perturbation=0.05, rng=21)  # 10976 atoms
    atoms.initialize_velocities(300.0, rng=22)

    sequential = _scaling_engine(atoms, box, "sequential")
    start = time.perf_counter()
    sequential.run(SCALING_STEPS)
    sequential_seconds = time.perf_counter() - start

    with _scaling_engine(atoms, box, "process", n_workers=4) as concurrent:
        start = time.perf_counter()
        concurrent.run(SCALING_STEPS)
        concurrent_seconds = time.perf_counter() - start
        # the speedup must never come at the price of the physics: the
        # concurrent trajectory is bitwise-identical, not merely close
        reference, gathered = sequential.gather(), concurrent.gather()
        np.testing.assert_array_equal(gathered.positions, reference.positions)
        np.testing.assert_array_equal(gathered.forces, reference.forces)
        n_workers = concurrent._executor.pool.n_workers

    speedup = sequential_seconds / concurrent_seconds
    cores = _visible_cores()
    print(
        f"\nStrong scaling, {len(atoms)} atoms, {SCALING_STEPS} steps, 2x2x1 ranks "
        f"({cores} cores visible):"
    )
    print(f"  sequential executor : {SCALING_STEPS / sequential_seconds:>8.2f} steps/s")
    print(
        f"  process executor x{n_workers} : {SCALING_STEPS / concurrent_seconds:>8.2f} "
        f"steps/s  ({speedup:.2f}x)"
    )
    if cores >= 4 and n_workers >= 4:
        # enough real cores for genuine concurrency: the 2x gate is armed
        assert speedup >= 2.0, (
            f"4 workers on {cores} cores reached only {speedup:.2f}x over the "
            "sequential executor (>= 2x required)"
        )
    else:
        print(
            f"  [note] only {cores} core(s) visible (affinity mask min cgroup "
            f"quota): concurrency cannot beat time-slicing here, so asserting "
            f"the {SINGLE_CORE_FLOOR:.2f}x dispatch-overhead floor instead of "
            "the 2x speedup gate"
        )
        assert speedup >= SINGLE_CORE_FLOOR, (
            f"process-executor dispatch overhead ate {1.0 - speedup:.0%} of the "
            f"sequential throughput (floor {SINGLE_CORE_FLOOR:.2f}x)"
        )


# ---------------------------------------------------------------------------
# Node-box load balance: measured SDMR vs the balancer's prediction
# ---------------------------------------------------------------------------


def test_bench_node_box_sdmr():
    atoms, box = copper_system((6, 6, 6), perturbation=0.05, rng=23)  # 864 atoms
    atoms.initialize_velocities(400.0, rng=24)

    def _engine(node_balance):
        return DomainDecomposedSimulation(
            atoms.copy(),
            box,
            LennardJones(0.05, 2.3, 5.0),
            timestep_fs=2.0,
            rank_dims=(2, 2, 1),
            scheme="node-based",
            neighbor_skin=0.4,
            neighbor_every=5,
            node_balance=node_balance,
        )

    plain, balanced = _engine(False), _engine(True)
    plain.run(N_STEPS)
    balanced.run(N_STEPS)

    measured_plain = plain.load_balance_stats()
    measured_balanced = balanced.load_balance_stats()
    balancer = IntraNodeLoadBalancer(balanced.decomposition)
    positions = balanced.gather().positions
    predicted = balancer.compare(positions, per_atom_time=1e-4, jitter_fraction=0.0)

    rows = [
        ("owner-computes (measured)", measured_plain),
        ("node-box (measured)", measured_balanced),
        ("owner-computes (predicted)", predicted["no"]),
        ("node-box (predicted)", predicted["yes"]),
    ]
    print(f"\nNode-box SDMR, {len(atoms)} atoms, 2x2x1 ranks, node-based delivery:")
    print(f"{'organization':>28} {'min':>5} {'avg':>7} {'max':>5} {'sdmr %':>7}")
    for label, stats in rows:
        natom = stats.atom_stats().summary()
        print(
            f"{label:>28} {natom['min']:>5.0f} {natom['avg']:>7.1f} "
            f"{natom['max']:>5.0f} {natom['sdmr%']:>7.2f}"
        )

    # the measured node-box counts *are* the predicted even split
    np.testing.assert_array_equal(
        measured_balanced.atom_counts, predicted["yes"].atom_counts
    )
    measured_reduction = (
        measured_plain.atom_stats().sdmr_percent
        - measured_balanced.atom_stats().sdmr_percent
    )
    predicted_reduction = (
        predicted["no"].atom_stats().sdmr_percent
        - predicted["yes"].atom_stats().sdmr_percent
    )
    print(
        f"  SDMR reduction: measured {measured_reduction:.2f} pts, "
        f"predicted {predicted_reduction:.2f} pts (paper Table III: 79.7 % relative)"
    )
    assert measured_reduction >= 0.0
    assert measured_reduction == pytest.approx(predicted_reduction)
    # per-rank pair times are real wall-clock measurements on both engines
    assert (measured_plain.pair_times > 0.0).all()
    assert (measured_balanced.pair_times > 0.0).all()
