"""Domain-decomposed engine throughput vs rank count (~1k-atom water box).

Runs the same dynamics on 1, 2, 4 and 8 simulated ranks and reports steps/sec
plus the measured per-rank pair and neighbour-build times.  Because the ranks
execute in-process the wall-clock does not drop with rank count — what must
drop is the *work each rank performs*, which is exactly the quantity the
paper's strong scaling rides on.  The assertions pin that sanity curve: the
mean per-rank pair time shrinks as the domain grid grows, and the per-rank
neighbour build (the vectorized binned build of ``md/neighbor.py``, timed
under the ``neigh`` phase) stays a small fraction of the per-rank pair work.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_engine.py -s
"""

from __future__ import annotations

from repro.md import water_system
from repro.md.forcefields.water import WaterReference
from repro.parallel import DomainDecomposedSimulation

N_MOLECULES = 333  # 999 atoms
N_STEPS = 10
GRIDS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]


def _engine(atoms, box, topology, rank_dims):
    return DomainDecomposedSimulation(
        atoms.copy(),
        box,
        WaterReference(topology, cutoff=4.0),
        timestep_fs=0.5,
        rank_dims=rank_dims,
        scheme="p2p",
        neighbor_skin=0.5,
        neighbor_every=5,
    )


def test_bench_parallel_engine():
    atoms, box, topology = water_system(N_MOLECULES, rng=17)
    atoms.initialize_velocities(350.0, rng=18)

    rows = []
    for rank_dims in GRIDS:
        engine = _engine(atoms, box, topology, rank_dims)
        report = engine.run(N_STEPS)
        pair_times = engine.load_balance_stats().pair_times
        mean_pair = float(pair_times.mean()) / N_STEPS
        builds = max(engine.n_builds, 1)
        mean_neigh = float(engine.neighbor_build_times().mean()) / builds
        rows.append(
            {
                "ranks": engine.n_ranks,
                "steps_per_sec": report.steps_per_second,
                "pair_ms_per_rank_step": 1.0e3 * mean_pair,
                "neigh_ms_per_rank_build": 1.0e3 * mean_neigh,
                "mean_ghosts": engine.measured_comm_volume()["mean_ghosts_per_rank"],
                "comm_frac": report.timers.fraction("comm"),
            }
        )

    print("\nDomain-decomposed water box (999 atoms, 10 steps, p2p delivery)")
    print(
        f"{'ranks':>5} {'steps/s':>9} {'pair ms/rank/step':>18} "
        f"{'neigh ms/rank/build':>20} {'ghosts/rank':>12} {'comm %':>7}"
    )
    for row in rows:
        print(
            f"{row['ranks']:>5} {row['steps_per_sec']:>9.2f} "
            f"{row['pair_ms_per_rank_step']:>18.3f} "
            f"{row['neigh_ms_per_rank_build']:>20.3f} {row['mean_ghosts']:>12.1f} "
            f"{100.0 * row['comm_frac']:>6.1f}%"
        )

    # The strong-scaling sanity curve: every decomposition shrinks the pair
    # work of a single rank, and the 8-rank grid at least halves it.
    single = rows[0]["pair_ms_per_rank_step"]
    for row in rows[1:]:
        assert row["pair_ms_per_rank_step"] < single, (
            f"{row['ranks']} ranks did not reduce the per-rank pair time"
        )
    assert rows[-1]["pair_ms_per_rank_step"] < 0.5 * single
    # every decomposition yields a throughput figure
    assert all(row["steps_per_sec"] > 0.0 for row in rows)
    # one vectorized per-rank neighbour build must cost less than the whole
    # run's pair work on that rank (pre-PR, the O(n_local^2) brute-force
    # builds at this size were the same order as the full run)
    for row in rows:
        assert row["neigh_ms_per_rank_build"] < row["pair_ms_per_rank_step"] * N_STEPS, (
            f"{row['ranks']} ranks: one neighbour build "
            f"({row['neigh_ms_per_rank_build']:.3f} ms) outweighs the whole "
            f"{N_STEPS}-step run's pair work"
        )
