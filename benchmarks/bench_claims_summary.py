"""Abstract-level claims re-derived from the model (communication, compute, LB, end-to-end)."""

from repro.core.experiments import claims_summary


def test_claims_summary(benchmark):
    claims = benchmark.pedantic(claims_summary, rounds=1, iterations=1)
    print()
    print("Headline claims (model) vs paper:")
    paper = {
        "communication_reduction_fraction": 0.81,
        "computation_speedup": 14.11,
        "load_balance_dispersion_reduction": 0.797,
        "end_to_end_speedup": 31.7,
        "copper_ns_day_12000_nodes": 149.0,
        "water_ns_day_12000_nodes": 68.5,
    }
    for key, value in claims.items():
        print(f"  {key:40s} model={value:10.3f}   paper={paper[key]:10.3f}")
    assert claims["communication_reduction_fraction"] > 0.55
    assert claims["computation_speedup"] > 5.0
    assert claims["load_balance_dispersion_reduction"] > 0.3
    assert claims["end_to_end_speedup"] > 8.0
    assert claims["copper_ns_day_12000_nodes"] > 100.0
    assert claims["water_ns_day_12000_nodes"] > 50.0
