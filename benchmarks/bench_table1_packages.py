"""Table I — performance survey of NNMD packages, plus this work's modelled rows."""

from repro.core.experiments import table1_packages


def test_table1_packages(benchmark):
    table = benchmark.pedantic(table1_packages, kwargs={"n_nodes": 12_000}, rounds=1, iterations=1)
    print()
    print(table.to_text())
    ours = [r for r in table.to_records() if "This work" in str(r["Work"])]
    assert len(ours) == 2
    copper_row = next(r for r in ours if r["System"] == "Cu")
    # the headline direction: well beyond the prior state of the art (4.7 ns/day)
    assert copper_row["ns/day"] > 50.0
