"""Batched vs scalar Deep Potential inference on a ~1k-atom water box.

The vectorized hot path (batched environment matrix + stacked embedding /
fitting evaluation + scatter-based force accumulation) must beat the retained
per-atom scalar reference (:mod:`repro.deepmd.scalar`) by at least 10x; this
is the speedup that unlocks the larger scenario sweeps of later PRs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_inference_vectorized.py -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.md import water_system
from repro.md.neighbor import build_neighbor_data

#: Minimum accepted speedup of the batched path over the scalar reference.
TARGET_SPEEDUP = 10.0


def _water_inference_setup(n_molecules: int = 333, seed: int = 7):
    """A ~1k-atom water box plus a paper-shaped (but small) model."""
    atoms, box, _ = water_system(n_molecules, rng=seed)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=6.0,
        cutoff_smooth=5.0,
        embedding_sizes=(8, 16),
        axis_neurons=4,
        fitting_sizes=(32, 32),
        max_neighbors=128,
        seed=seed,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(seed)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(2, config.descriptor_dim)),
        0.5 + rng.random((2, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-2.0, -0.5]))
    neighbors = build_neighbor_data(atoms.positions, box, config.cutoff)
    return model, atoms, box, neighbors


def test_bench_inference_vectorized():
    model, atoms, box, neighbors = _water_inference_setup()
    n = len(atoms)

    # Warm-up exports the fast kernels so neither path pays it inside timing.
    model.fast_embeddings()
    model.fast_fittings()

    t0 = time.perf_counter()
    out_scalar = model.evaluate_scalar(atoms, box, neighbors)
    t_scalar = time.perf_counter() - t0

    # Best of a few repetitions for the (fast) vectorized path.
    t_vec = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        out_vec = model.evaluate(atoms, box, neighbors)
        t_vec = min(t_vec, time.perf_counter() - t0)

    speedup = t_scalar / t_vec
    print()
    print(f"Batched vs scalar Deep Potential inference ({n} atoms, water)")
    print(f"  scalar reference : {t_scalar * 1e3:9.1f} ms/eval")
    print(f"  vectorized       : {t_vec * 1e3:9.1f} ms/eval")
    print(f"  speedup          : {speedup:9.1f}x (target >= {TARGET_SPEEDUP:.0f}x)")

    # The two paths must agree before the timing means anything.
    np.testing.assert_allclose(out_vec.forces, out_scalar.forces, atol=1.0e-10)
    np.testing.assert_allclose(
        out_vec.per_atom_energy, out_scalar.per_atom_energy, atol=1.0e-10
    )
    assert abs(out_vec.energy - out_scalar.energy) < 1.0e-8
    assert speedup >= TARGET_SPEEDUP
