"""Fig. 10 — pair-time distribution across ranks with and without load balance."""

import numpy as np

from repro.core.experiments import fig10_pair_time_distribution


def test_fig10_pair_time_distribution(benchmark):
    distributions = benchmark.pedantic(
        fig10_pair_time_distribution,
        kwargs={"system_name": "copper", "atoms_per_core": (1, 2, 8)},
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 10 — per-rank pair time distribution (seconds)")
    for label, times in sorted(distributions.items()):
        print(
            f"  {label:8s} min={times.min():.5f} median={np.median(times):.5f} "
            f"max={times.max():.5f} spread={(times.max() - times.min()):.5f}"
        )
    for apc in (1, 2):
        no_lb = distributions[f"{apc}-nolb"]
        lb = distributions[f"{apc}-lb"]
        # the load balance narrows the distribution and lowers the worst rank
        assert lb.max() <= no_lb.max() * 1.02
        assert (lb.max() - lb.min()) < (no_lb.max() - no_lb.min())
        assert lb.std() < no_lb.std()
