"""Table II — energy and force error of one time-step under mixed precision."""

from repro.core.experiments import table2_precision


def test_table2_precision(benchmark, trained_water_model):
    table = benchmark.pedantic(
        table2_precision, kwargs={"trained": trained_water_model}, rounds=1, iterations=1
    )
    print()
    print(table.to_text(floatfmt=".3e"))
    records = {r["Precision"]: r for r in table.to_records()}
    double = records["Double"]
    fp32 = records["MIX-fp32"]
    fp16 = records["MIX-fp16"]
    # Paper: MIX-fp32 matches double precision; MIX-fp16 degrades the energy
    # error only slightly and the force error stays at the double level.
    assert fp32["Error in energy [eV/atom]"] <= 2.0 * double["Error in energy [eV/atom]"] + 1e-6
    assert fp16["Error in energy [eV/atom]"] <= 5.0 * double["Error in energy [eV/atom]"] + 1e-3
    assert abs(fp16["Error in force [eV/A]"] - double["Error in force [eV/A]"]) < 0.1
