"""Table II — accuracy *and* speed of one time-step under mixed precision.

Two guards:

* **accuracy** — the trained-model energy/force errors under MIX-fp32 /
  MIX-fp16 stay at the paper's Table II relations to the double baseline
  (``test_table2_precision``);
* **steps/sec** — MIX-fp32 must be a real fast path, not an accuracy
  simulation: >= 1.5x the double-precision steps/sec on a ~4k-atom
  compressed water Deep Potential MD run (~1.7x measured on this
  container).  Before the mixed-precision fast path landed this ratio was
  ~1.0x — the policy only changed what the FLOPs were *accounted* as.

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_table2_precision.py
"""

import time

import numpy as np

from repro.core.experiments import table2_precision
from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.deepmd.pair_style import DeepPotentialForceField
from repro.md import Simulation, water_system

#: Minimum accepted MIX-fp32 over double steps/sec ratio at ~4k atoms.
SPEEDUP_TARGET = 1.5
#: ~4k atoms (1333 water molecules): the scale the acceptance criterion names.
N_MOLECULES = 1333
#: Table resolution of the speed runs (same grid as the compression bench).
N_POINTS = 512


def _benchmark_model(seed: int = 7):
    """The embedding-heavy ~4k-atom water setup of the compression bench."""
    atoms, box, _ = water_system(N_MOLECULES, rng=seed)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=6.0,
        cutoff_smooth=5.0,
        embedding_sizes=(32, 64, 128),
        axis_neurons=8,
        fitting_sizes=(32, 32),
        max_neighbors=100,
        seed=seed,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(seed)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(2, config.descriptor_dim)),
        0.5 + rng.random((2, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-2.0, -0.5]))
    return model, atoms, box


def _dp_simulation(model, atoms, box, precision: str) -> Simulation:
    force_field = DeepPotentialForceField(
        model, precision=precision, compressed=True, compression_points=N_POINTS
    )
    sim_atoms = atoms.copy()
    sim_atoms.initialize_velocities(120.0, rng=3)
    return Simulation(
        sim_atoms,
        box,
        force_field,
        timestep_fs=0.25,
        neighbor_skin=1.5,
        neighbor_every=50,
    )


def _best_steps_per_second(sim: Simulation, n_steps: int = 3, repeats: int = 2) -> float:
    sim.run(1, sample_every=0)  # warm up: kernels, tables and pools built
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim.run(n_steps, sample_every=1)
        best = max(best, n_steps / (time.perf_counter() - start))
    return best


def test_mix_fp32_speedup_guard():
    """MIX-fp32 >= 1.5x double steps/sec on ~4k-atom compressed water MD."""
    model, atoms, box = _benchmark_model()
    slow = _best_steps_per_second(_dp_simulation(model, atoms, box, "double"))
    fast = _best_steps_per_second(_dp_simulation(model, atoms, box, "mix-fp32"))
    speedup = fast / slow
    print()
    print(f"Mixed-precision Deep Potential MD ({len(atoms)} atoms, water, compressed)")
    print(f"  double   : {slow:8.3f} steps/s")
    print(f"  mix-fp32 : {fast:8.3f} steps/s")
    print(f"  speedup  : {speedup:8.2f}x (target >= {SPEEDUP_TARGET}x)")
    assert speedup >= SPEEDUP_TARGET, (
        f"MIX-fp32 only {speedup:.2f}x over double at {len(atoms)} atoms "
        f"(expected >= {SPEEDUP_TARGET}x)"
    )


def test_table2_precision(benchmark, trained_water_model):
    table = benchmark.pedantic(
        table2_precision, kwargs={"trained": trained_water_model}, rounds=1, iterations=1
    )
    print()
    print(table.to_text(floatfmt=".3e"))
    records = {r["Precision"]: r for r in table.to_records()}
    double = records["Double"]
    fp32 = records["MIX-fp32"]
    fp16 = records["MIX-fp16"]
    # Paper: MIX-fp32 matches double precision; MIX-fp16 degrades the energy
    # error only slightly and the force error stays at the double level.
    assert fp32["Error in energy [eV/atom]"] <= 2.0 * double["Error in energy [eV/atom]"] + 1e-6
    assert fp16["Error in energy [eV/atom]"] <= 5.0 * double["Error in energy [eV/atom]"] + 1e-3
    assert abs(fp16["Error in force [eV/A]"] - double["Error in force [eV/A]"]) < 0.1
