"""Fig. 6 — water radial distribution functions under three precisions."""

from repro.core.experiments import fig6_overlap_errors, fig6_rdf


def test_fig6_rdf_overlap(benchmark, trained_water_model):
    curves = benchmark.pedantic(
        fig6_rdf,
        kwargs={"trained": trained_water_model, "n_molecules": 32, "n_steps": 60},
        rounds=1,
        iterations=1,
    )
    print()
    print("Fig. 6 — g(r) series (first peak position/height per precision)")
    for precision, pair_curves in curves.items():
        for pair, rdf in pair_curves.items():
            r_peak, g_peak = rdf.first_peak()
            print(f"  {precision:9s} g_{pair}(r): first peak at {r_peak:.2f} A, height {g_peak:.2f}")
    errors = fig6_overlap_errors(curves)
    print("  mean |g_double - g_reduced| per pair:", {k: round(v, 4) for k, v in errors.items()})
    # The paper's claim: the three curves overlap.  The short example
    # trajectories are chaotic, so the comparison is made relative to the
    # height of each pair's first peak (the intramolecular O-H/H-H peaks reach
    # g ~ 20-40 in a 32-molecule box).
    for key, value in errors.items():
        pair = key.split(":")[1]
        scale = max(1.0, curves["double"][pair].first_peak()[1])
        assert value / scale < 0.25, f"RDF mismatch too large for {key}: {value} (peak {scale})"
    # sanity: the O-H curve has a structured first peak
    assert curves["double"]["OH"].first_peak()[1] > 1.0
