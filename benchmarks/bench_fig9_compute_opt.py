"""Fig. 9 — step-by-step computation optimization on 96 nodes."""

from repro.core.experiments import computation_speedup, fig9_computation


def test_fig9_computation(benchmark):
    table = benchmark.pedantic(
        fig9_computation,
        kwargs={"systems": ("copper", "water"), "atoms_per_core": (1, 2, 8)},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text(floatfmt=".2f"))
    records = table.to_records()

    def speedup(system, apc, stage):
        for r in records:
            if r["system"] == system and r["atoms/core"] == apc and r["stage"] == stage:
                return r["speedup vs baseline"]
        raise KeyError((system, apc, stage))

    for system in ("copper", "water"):
        for apc in (1, 2):
            # removing the framework is the single biggest computational gain
            assert speedup(system, apc, "rmtf-fp64") > 2.5
            # the cumulative ladder keeps improving through mixed precision
            assert speedup(system, apc, "sve-fp16") > speedup(system, apc, "blas-fp32")
            # full optimization is an order of magnitude in the strong-scaling regime
            assert speedup(system, apc, "comm_lb") > 6.0
        # at 8 atoms/core the gains are much smaller (the paper's observation)
        assert speedup(system, 8, "comm_lb") < speedup(system, 1, "comm_lb")

    headline = computation_speedup("copper", atoms_per_core=1)
    print(f"computation speedup (copper, 1 atom/core, sve-fp16 vs baseline): {headline:.1f}x (paper: 14.11x on water)")
