"""Fig. 7 — step-by-step communication optimization on 96 nodes."""

from repro.core.experiments import communication_reduction, fig7_comm_schemes


def test_fig7_comm_schemes(benchmark):
    table = benchmark.pedantic(fig7_comm_schemes, rounds=1, iterations=1)
    print()
    print(table.to_text(floatfmt=".3f"))
    records = table.to_records()

    def relative(cutoff, factors, scheme):
        for r in records:
            if r["cutoff"] == cutoff and r["sub-box (r_cut units)"] == str(factors) and r["scheme"] == scheme:
                return r["relative to baseline"]
        raise KeyError((cutoff, factors, scheme))

    strong = (0.5, 0.5, 0.5)
    weak = (1, 1, 1)
    for cutoff in (8.0, 10.0):
        # strong-scaling regime: node-based scheme wins, baseline worst
        assert relative(cutoff, strong, "lb-4l") < relative(cutoff, strong, "3stage-utofu")
        assert relative(cutoff, strong, "lb-4l") < relative(cutoff, strong, "p2p-utofu")
        assert relative(cutoff, strong, "lb-4l") < 0.5
        # [1,1,1] r_cut: the rank-level uTofu patterns beat the node-based scheme
        assert relative(cutoff, weak, "3stage-utofu") < relative(cutoff, weak, "lb-4l")

    reduction = communication_reduction()
    print(f"communication reduction (baseline -> lb-4l, cut-8, 0.5 r_cut sub-box): {reduction:.1%} (paper: 81%)")
    assert reduction > 0.55
