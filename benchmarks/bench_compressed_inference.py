"""Compressed (tabulated) vs uncompressed vectorized Deep Potential inference.

Model compression — replacing the embedding-net GEMMs with the batched
multi-table cubic-Hermite interpolation of
:class:`repro.deepmd.compression.TabulatedEmbeddingSet` — is the paper's
headline inference optimization (the Guo et al. PPoPP'22 baseline it builds
on).  This benchmark pins it the way PR 1/3/4 pinned their fast paths:

* **steps/sec** — a ~1k-atom water Deep Potential MD run with
  ``compressed=True`` must be >= 2x the uncompressed vectorized path
  (~2.1-2.5x measured on this container depending on load);
* **parity** — the batched stacked-table evaluator agrees with the per-key
  golden table path at 1e-12 on the benchmark system's actual s values, and
  the compressed forces stay close to the exact path;
* **allocation budget** — a steady-state compressed MD step performs at most
  ``ALLOCATION_BUDGET`` explicit NumPy allocator calls (PR 4's
  zero-allocation budget, extended to ``compressed=True`` runs).

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_compressed_inference.py
"""

from __future__ import annotations

import time

import numpy as np

import pytest

from repro.deepmd import DeepPotential, DeepPotentialConfig
from repro.deepmd.pair_style import DeepPotentialForceField
from repro.md import Simulation, water_system
from repro.md.neighbor import build_neighbor_data

#: Minimum accepted steps/sec speedup of compressed over uncompressed.
TARGET_SPEEDUP = 2.0
#: Batched-vs-golden table agreement on the benchmark system's inputs.
GOLDEN_TOLERANCE = 1.0e-12
#: Compressed-vs-exact max force deviation at the benchmark grid.
FORCE_TOLERANCE = 1.0e-8
#: Explicit allocator calls allowed per steady-state compressed step.
ALLOCATION_BUDGET = 2
#: Table resolution used for the speed runs (the paper's two-level table has
#: a comparable node count; accuracy at this grid is ~1e-10 in the forces).
N_POINTS = 512

_COUNTED_ALLOCATORS = (
    "zeros",
    "empty",
    "ones",
    "full",
    "zeros_like",
    "empty_like",
    "ones_like",
    "full_like",
)


class _AllocationCounter:
    """Counts explicit NumPy array allocations while active."""

    def __init__(self) -> None:
        self.count = 0
        self._originals: dict[str, object] = {}

    def __enter__(self) -> "_AllocationCounter":
        for name in _COUNTED_ALLOCATORS:
            original = getattr(np, name)
            self._originals[name] = original

            def counted(*args, _original=original, **kwargs):
                self.count += 1
                return _original(*args, **kwargs)

            setattr(np, name, counted)
        return self

    def __exit__(self, *exc) -> None:
        for name, original in self._originals.items():
            setattr(np, name, original)


def _benchmark_model(seed: int = 7):
    """A ~1k-atom water box and an embedding-heavy Deep Potential.

    The embedding net dominates the uncompressed inference cost (the regime
    compression targets); the fitting net is kept small so the shared
    descriptor/fitting work does not mask the embedding win.
    """
    atoms, box, _ = water_system(333, rng=seed)
    config = DeepPotentialConfig(
        type_names=("O", "H"),
        cutoff=6.0,
        cutoff_smooth=5.0,
        embedding_sizes=(32, 64, 128),
        axis_neurons=8,
        fitting_sizes=(32, 32),
        max_neighbors=100,
        seed=seed,
    )
    model = DeepPotential(config)
    rng = np.random.default_rng(seed)
    model.set_descriptor_stats(
        rng.normal(scale=0.1, size=(2, config.descriptor_dim)),
        0.5 + rng.random((2, config.descriptor_dim)),
    )
    model.set_energy_bias(np.array([-2.0, -0.5]))
    return model, atoms, box


def _dp_simulation(model, atoms, box, compressed: bool, precision: str = "double") -> Simulation:
    force_field = DeepPotentialForceField(
        model, precision=precision, compressed=compressed, compression_points=N_POINTS
    )
    sim_atoms = atoms.copy()
    sim_atoms.initialize_velocities(120.0, rng=3)
    return Simulation(
        sim_atoms,
        box,
        force_field,
        timestep_fs=0.25,
        neighbor_skin=1.5,
        neighbor_every=50,
    )


def _best_steps_per_second(sim: Simulation, n_steps: int = 4, repeats: int = 3) -> float:
    sim.run(1, sample_every=0)  # warm up: kernels exported, pools filled
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim.run(n_steps, sample_every=1)
        best = max(best, n_steps / (time.perf_counter() - start))
    return best


def test_bench_compressed_speedup_and_parity():
    """>= 2x steps/sec, with the table pinned to golden and to the exact path."""
    model, atoms, box = _benchmark_model()
    neighbors = build_neighbor_data(atoms.positions, box, model.config.cutoff)
    n = len(atoms)

    # --- parity gates first: the timing means nothing if the physics drifted
    table = model.compressed_embeddings(n_points=N_POINTS)
    env = model.build_environment(atoms, box, neighbors)
    s_real = env.s[env.mask > 0.0]
    for key, slot in table._slot_of.items():
        golden_v, golden_d = table.evaluate(key, s_real)
        batched_v, batched_d = table.evaluate_batched(np.full(s_real.shape, slot), s_real)
        np.testing.assert_allclose(batched_v, golden_v, rtol=0.0, atol=GOLDEN_TOLERANCE)
        np.testing.assert_allclose(batched_d, golden_d, rtol=0.0, atol=GOLDEN_TOLERANCE)

    exact = model.evaluate(atoms, box, neighbors)
    compressed = model.evaluate(atoms, box, neighbors, compressed=True)
    force_error = float(np.max(np.abs(compressed.forces - exact.forces)))
    assert force_error < FORCE_TOLERANCE

    # --- steps/sec: compressed vs uncompressed on the same dynamics
    slow = _best_steps_per_second(_dp_simulation(model, atoms, box, compressed=False))
    fast = _best_steps_per_second(_dp_simulation(model, atoms, box, compressed=True))
    speedup = fast / slow
    print()
    print(f"Compressed vs exact Deep Potential MD ({n} atoms, water)")
    print(f"  uncompressed : {slow:8.2f} steps/s")
    print(f"  compressed   : {fast:8.2f} steps/s")
    print(f"  speedup      : {speedup:8.2f}x (target >= {TARGET_SPEEDUP:.0f}x)")
    print(f"  max |dF|     : {force_error:.2e} (tolerance {FORCE_TOLERANCE:.0e})")
    assert speedup >= TARGET_SPEEDUP, (
        f"compressed path only {speedup:.2f}x over the uncompressed vectorized "
        f"path (expected >= {TARGET_SPEEDUP}x)"
    )


@pytest.mark.parametrize("precision", ["double", "mix-fp32"])
def test_compressed_steady_state_allocation_budget(precision):
    """A compressed MD step runs out of the workspace pool, not the allocator.

    The ``mix-fp32`` case guards the mixed-precision fast path: the
    pre-cast parameter/table copies must be reused (no per-call ``astype``
    churn), so a steady-state mixed step stays within the same budget as
    the double path — and the GEMM layer itself must not be the one
    downcasting (``cast_bytes`` stays flat across the window).
    """
    model, atoms, box = _benchmark_model(seed=8)
    sim = _dp_simulation(model, atoms, box, compressed=True, precision=precision)
    sim.neighbor_list.rebuild_every = 0  # rebuilds only on the skin criterion
    sim.run(3)  # fills every pool (envmat, embedding, fitting, integrator)
    builds_before = sim.neighbor_list.n_builds
    backend = sim.force_field.backend
    cast_before = backend.stats.cast_bytes
    n_steps = 3
    with _AllocationCounter() as counter:
        sim.run(n_steps, sample_every=1)
    assert sim.neighbor_list.n_builds == builds_before, (
        "a neighbour rebuild landed in the measurement window; "
        "the budget only applies to steady-state steps"
    )
    assert backend.stats.cast_bytes == cast_before, (
        "GemmBackend.matmul downcast an operand per call in steady state "
        "(the pre-cast weight/activation fast path regressed)"
    )
    per_step = counter.count / n_steps
    print(f"\nexplicit allocations per steady-state compressed {precision} step: "
          f"{per_step:.2f} (budget {ALLOCATION_BUDGET})")
    assert per_step <= ALLOCATION_BUDGET
