"""Neighbour-build timing: scaling curve, crossover and the 10x guard.

Measures the vectorized binned build (``_cell_list_pairs``) against the two
O-cliffs this repo used to have:

* the O(N^2) brute-force search that ``BRUTE_FORCE_THRESHOLD = 1500`` kept
  routing 1400-atom systems through (~80-160 ms depending on load, where the
  binned build needs ~7-9 ms), and
* the pre-PR Python-triple-loop cell list (kept below as
  ``_pre_pr_cell_list_pairs``, verbatim apart from the removed brute-force
  fallback), which costs ~200-320 ms for one 4000-atom build against
  ~16-18 ms binned (12-18x measured across runs on this container).

Assertions pin the re-tuned crossover (binned must win clearly above the
threshold) and the headline ``>= 10x`` speedup of the vectorized build over
the pre-PR cell list on a 4000-atom build.  A per-rank section runs the
domain-decomposed engine and checks the per-rank build time shrinks with the
rank grid — the neighbour-build share of the paper's strong-scaling story.

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_neighbor_build.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.md import Box, copper_system
from repro.md.forcefields import LennardJones
from repro.md.neighbor import (
    BRUTE_FORCE_THRESHOLD,
    _brute_force_pairs,
    _cell_list_pairs,
)
from repro.parallel import DomainDecomposedSimulation

DENSITY = 0.09  # atoms/A^3, liquid-like
SEARCH = 5.0  # cutoff + skin in angstrom


def _pre_pr_cell_list_pairs(positions, box, cutoff):
    """The pre-PR cell list: a Python triple loop over *all* cells."""
    lengths = box.lengths
    n_cells = np.maximum((lengths // cutoff).astype(int), 1)
    frac = positions / lengths
    frac = frac - np.floor(frac)
    cell_idx = np.minimum((frac * n_cells).astype(int), n_cells - 1)
    flat_idx = (
        cell_idx[:, 0] * n_cells[1] * n_cells[2]
        + cell_idx[:, 1] * n_cells[2]
        + cell_idx[:, 2]
    )
    order = np.argsort(flat_idx, kind="stable")
    sorted_flat = flat_idx[order]
    total_cells = int(np.prod(n_cells))
    cell_starts = np.searchsorted(sorted_flat, np.arange(total_cells))
    cell_ends = np.searchsorted(sorted_flat, np.arange(total_cells), side="right")
    offsets = np.array(
        [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    )
    cutoff2 = cutoff * cutoff
    pair_i, pair_j = [], []
    nx, ny, nz = (int(v) for v in n_cells)
    for cx in range(nx):
        for cy in range(ny):
            for cz in range(nz):
                c_flat = cx * ny * nz + cy * nz + cz
                a_start, a_end = cell_starts[c_flat], cell_ends[c_flat]
                if a_start == a_end:
                    continue
                atoms_a = order[a_start:a_end]
                for dx, dy, dz in offsets:
                    ncx, ncy, ncz = (cx + dx) % nx, (cy + dy) % ny, (cz + dz) % nz
                    n_flat = ncx * ny * nz + ncy * nz + ncz
                    if n_flat < c_flat:
                        continue
                    b_start, b_end = cell_starts[n_flat], cell_ends[n_flat]
                    if b_start == b_end:
                        continue
                    atoms_b = order[b_start:b_end]
                    delta = positions[atoms_a][:, None, :] - positions[atoms_b][None, :, :]
                    delta = box.minimum_image(delta)
                    dist2 = np.einsum("abk,abk->ab", delta, delta)
                    if n_flat == c_flat:
                        ia, jb = np.triu_indices(len(atoms_a), k=1)
                        mask = dist2[ia, jb] <= cutoff2
                        pi, pj = atoms_a[ia[mask]], atoms_b[jb[mask]]
                    else:
                        mask = dist2 <= cutoff2
                        ia, jb = np.nonzero(mask)
                        pi, pj = atoms_a[ia], atoms_b[jb]
                    if len(pi):
                        pair_i.append(np.minimum(pi, pj))
                        pair_j.append(np.maximum(pi, pj))
    if not pair_i:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    all_i = np.concatenate(pair_i).astype(np.int64)
    all_j = np.concatenate(pair_j).astype(np.int64)
    keys = all_i * len(positions) + all_j
    _, unique_idx = np.unique(keys, return_index=True)
    return all_i[unique_idx], all_j[unique_idx]


def _best_of(fn, *args, reps=5):
    """Best-of-``reps`` timing: robust to scheduler noise on shared runners."""
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def _random_system(n, rng):
    length = (n / DENSITY) ** (1.0 / 3.0)
    box = Box.cubic(length)
    return rng.uniform(0.0, length, size=(n, 3)), box


def test_bench_neighbor_build_scaling():
    rng = np.random.default_rng(11)

    print("\nNeighbour-build scaling (density 0.09/A^3, search radius 5 A)")
    print(f"{'N':>6} {'binned ms':>10} {'pre-PR ms':>10} {'brute ms':>10}")
    rows = {}
    for n in (500, 1000, 2000, 4000):
        positions, box = _random_system(n, rng)
        binned = _best_of(_cell_list_pairs, positions, box, SEARCH)
        pre_pr = _best_of(_pre_pr_cell_list_pairs, positions, box, SEARCH)
        brute = _best_of(_brute_force_pairs, positions, box, SEARCH) if n <= 2000 else np.nan
        rows[n] = (binned, pre_pr, brute)
        print(f"{n:>6} {binned*1e3:>10.2f} {pre_pr*1e3:>10.2f} {brute*1e3:>10.2f}")

    # the headline guard: >= 10x over the pre-PR Python cell list at 4000 atoms
    binned_4k, pre_pr_4k, _ = rows[4000]
    speedup = pre_pr_4k / binned_4k
    print(f"4000-atom build: {speedup:.1f}x over the pre-PR cell list (>= 10x required)")
    assert speedup >= 10.0, (
        f"vectorized binned build only {speedup:.1f}x faster than the pre-PR "
        "cell list — a Python-level loop has probably crept back in"
    )


def test_bench_threshold_crossover():
    """The re-tuned BRUTE_FORCE_THRESHOLD sits at the measured crossover."""
    rng = np.random.default_rng(12)
    n = 2 * BRUTE_FORCE_THRESHOLD
    positions, box = _random_system(n, rng)
    brute = _best_of(_brute_force_pairs, positions, box, SEARCH, reps=5)
    binned = _best_of(_cell_list_pairs, positions, box, SEARCH, reps=5)
    print(
        f"\ncrossover check at N={n} (2x threshold): "
        f"brute {brute*1e3:.2f} ms, binned {binned*1e3:.2f} ms"
    )
    # At twice the threshold the binned build must already win clearly; if
    # this fires, re-measure and re-tune BRUTE_FORCE_THRESHOLD.
    assert binned < brute, (
        f"binned build ({binned*1e3:.2f} ms) slower than brute force "
        f"({brute*1e3:.2f} ms) at N={n}; BRUTE_FORCE_THRESHOLD needs re-tuning"
    )


def test_bench_per_rank_build_times():
    """Per-rank neighbour builds shrink as the rank grid grows (4000 atoms)."""
    atoms, box = copper_system((10, 10, 10), perturbation=0.05, rng=13)

    print("\nPer-rank neighbour-build time, 4000-atom copper, LJ cutoff 4.0 A")
    print(f"{'ranks':>6} {'mean build ms/rank':>19} {'max build ms/rank':>18}")
    mean_by_ranks = {}
    for rank_dims in ((1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)):
        engine = DomainDecomposedSimulation(
            atoms.copy(),
            box,
            LennardJones(epsilon=0.4, sigma=2.3, cutoff=4.0),
            timestep_fs=1.0,
            rank_dims=rank_dims,
            neighbor_skin=1.0,
        )
        engine.compute_forces()  # triggers exactly one build on every rank
        times = engine.neighbor_build_times()
        mean_by_ranks[engine.n_ranks] = times.mean()
        print(f"{engine.n_ranks:>6} {times.mean()*1e3:>19.2f} {times.max()*1e3:>18.2f}")

    # ghost shells keep per-rank systems larger than n/ranks, but the build
    # each rank pays must still drop clearly by the 8-rank grid
    assert mean_by_ranks[8] < 0.6 * mean_by_ranks[1]
